#include "telemetry/registry.hpp"

#include <map>
#include <optional>
#include <utility>

namespace moongen::telemetry {

MetricTree& MetricRegistry::shard(std::size_t index) {
  std::scoped_lock lock(mutex_);
  while (trees_.size() <= index) trees_.push_back(std::make_unique<MetricTree>());
  return *trees_[index];
}

std::size_t MetricRegistry::tree_count() const {
  std::scoped_lock lock(mutex_);
  return trees_.size();
}

Snapshot MetricRegistry::snapshot(std::uint64_t timestamp_ns) const {
  // Merge under name-sorted maps: counters sum, gauges last-writer-wins in
  // (tree 0, tree 1, ...) order, histograms merge losslessly.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, LogLinearHistogram> hists;
  std::vector<const MetricTree*> trees;
  {
    std::scoped_lock lock(mutex_);
    trees.reserve(trees_.size());
    for (const auto& tree : trees_) trees.push_back(tree.get());
  }
  for (const MetricTree* tree : trees) {
    tree->visit_counters([&](const std::string& name, std::uint64_t v) { counters[name] += v; });
    tree->visit_gauges([&](const std::string& name, double v) { gauges[name] = v; });
    tree->visit_histograms([&](const std::string& name, const LogLinearHistogram& h) {
      auto [it, inserted] = hists.emplace(name, h);
      if (!inserted) it->second.merge(h);
    });
  }
  Snapshot snap;
  snap.timestamp_ns = timestamp_ns;
  snap.counters.reserve(counters.size());
  for (auto& [name, v] : counters) snap.counters.push_back({name, v});
  snap.gauges.reserve(gauges.size());
  for (auto& [name, v] : gauges) snap.gauges.push_back({name, v});
  snap.histograms.reserve(hists.size());
  for (auto& [name, h] : hists) snap.histograms.push_back({name, std::move(h)});
  return snap;
}

std::uint64_t MetricRegistry::counter_value(const std::string& name) const {
  std::uint64_t total = 0;
  std::vector<const MetricTree*> trees;
  {
    std::scoped_lock lock(mutex_);
    trees.reserve(trees_.size());
    for (const auto& tree : trees_) trees.push_back(tree.get());
  }
  for (const MetricTree* tree : trees)
    tree->visit_counters([&](const std::string& n, std::uint64_t v) {
      if (n == name) total += v;
    });
  return total;
}

double MetricRegistry::gauge_value(const std::string& name) const {
  double value = 0.0;
  std::vector<const MetricTree*> trees;
  {
    std::scoped_lock lock(mutex_);
    trees.reserve(trees_.size());
    for (const auto& tree : trees_) trees.push_back(tree.get());
  }
  for (const MetricTree* tree : trees)
    tree->visit_gauges([&](const std::string& n, double v) {
      if (n == name) value = v;
    });
  return value;
}

LogLinearHistogram MetricRegistry::histogram_merged(const std::string& name) const {
  std::optional<LogLinearHistogram> merged;
  std::vector<const MetricTree*> trees;
  {
    std::scoped_lock lock(mutex_);
    trees.reserve(trees_.size());
    for (const auto& tree : trees_) trees.push_back(tree.get());
  }
  for (const MetricTree* tree : trees)
    tree->visit_histograms([&](const std::string& n, const LogLinearHistogram& h) {
      if (n != name) return;
      if (merged.has_value())
        merged->merge(h);
      else
        merged = h;
    });
  return merged.has_value() ? *merged : LogLinearHistogram{HistogramConfig{}};
}

std::size_t MetricRegistry::metric_count() const {
  const Snapshot snap = snapshot();
  return snap.counters.size() + snap.gauges.size() + snap.histograms.size();
}

}  // namespace moongen::telemetry
