// Always-on in-path RTT plane: gap-free latency histograms on the RX path.
//
// MoonGen's Timestamper measures latency by *sampling*: one PTP-stamped
// packet in flight at a time, a few thousand samples per run. That leaves
// blind spots — a microburst between samples is invisible, and lost
// samples silently shrink the population (coordinated omission). The
// histogram-based P4TG follow-up shows the alternative this plane
// implements: every timestamp-capable frame carries its departure time
// (the same payload-stamp trick the RPC codec uses), the receive path
// folds `arrival - departure` into a per-flow-group log-linear histogram
// with zero allocation, and quantiles are published per *window* — p50 /
// p99 / p999 every 100 ms of virtual time, not just at end of run.
//
// Sharding & determinism: each simulation shard owns one RttShard
// (single-writer, plain counters — the shard thread is the only writer;
// readers run at quiesced window boundaries, ordered by the ParallelRuntime
// barrier). At each window boundary a ParallelRuntime window hook calls
// RttPlane::close_window, which merges the shards' window histograms in
// shard-index order. Histogram merge is commutative addition over
// identical geometry, and the set of frames recorded does not depend on
// where their ports live — so the closed windows (and everything printed
// from them) are byte-identical across `--shards 1/2/4`.
//
// Conservation: a stamped frame must end in exactly one place. The plane
// counts every stamp birth (tx_stamped / tx_forwarded / duplicated) and
// every death (rx_seen / dropped); health::make_rtt_checker asserts the
// difference — the in-flight count — never goes negative, and that the
// histogram population equals the recorded count. Lost stamps therefore
// count as drops instead of silently shrinking the population, which is
// exactly the disagreement the sampled Timestamper path had under
// fault-plane loss.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "telemetry/handles.hpp"
#include "telemetry/log_linear_histogram.hpp"

namespace moongen::telemetry {

struct RttPlaneConfig {
  /// Flow groups per shard (rounded up to a power of two, >= 1). A frame's
  /// `flow` label indexes its group modulo this count.
  std::uint32_t flow_groups = 1;
  /// Window length in picoseconds of virtual time (default 100 ms — the
  /// sampling cadence of the fig10/fig11 experiments).
  std::uint64_t window_ps = 100'000'000'000ull;
  /// Geometry of every histogram on the plane (values in nanoseconds).
  HistogramConfig histogram{};
  /// Retained closed windows; older ones are evicted (a week-long soak at
  /// 100 ms windows would otherwise hold ~6 million windows).
  std::size_t max_windows = 8192;
};

/// Quantiles of one flow group over one window (ns, bucket lower edges).
struct RttWindowGroup {
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
};

/// One closed window: merged across shards, per-group and overall.
struct RttWindow {
  std::uint64_t start_ps = 0;
  std::uint64_t end_ps = 0;
  std::uint64_t count = 0;    ///< RTT samples recorded in this window
  std::uint64_t dropped = 0;  ///< stamped frames lost in this window
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::vector<RttWindowGroup> groups;
};

/// One simulation shard's slice of the plane. Single-writer: only the
/// owning shard's thread calls the mutators; RttPlane reads at quiesced
/// window boundaries. All storage is preallocated — record() allocates
/// nothing and touches no lock, no atomic.
class RttShard {
 public:
  RttShard(std::uint32_t flow_groups_pow2, HistogramConfig cfg);
  RttShard(const RttShard&) = delete;
  RttShard& operator=(const RttShard&) = delete;

  /// Folds one RTT observation (ns) into flow group `flow & mask`.
  void record(std::uint32_t flow, std::uint64_t rtt_ns) {
    Group& g = groups_[flow & mask_];
    g.window.record(rtt_ns);
    g.cumulative.record(rtt_ns);
    ++recorded_;
  }
  /// Same, with a picosecond RTT (rounded to the nearest ns).
  void record_ps(std::uint32_t flow, std::uint64_t rtt_ps) {
    record(flow, (rtt_ps + 500) / 1000);
  }

  // Conservation bookkeeping (see file header). Same single-writer rule.
  void note_tx_stamped() { ++tx_stamped_; }     ///< fresh departure stamp applied
  void note_tx_forwarded() { ++tx_forwarded_; } ///< already-stamped frame re-transmitted
  void note_duplicated() { ++duplicated_; }     ///< wire duplicated a stamped frame
  void note_dropped() { ++dropped_; }           ///< stamped frame died (wire or NIC)
  void note_rx_seen() { ++rx_seen_; }           ///< stamped frame accepted at an RX path

  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  [[nodiscard]] std::uint64_t tx_stamped() const { return tx_stamped_; }
  [[nodiscard]] std::uint64_t tx_forwarded() const { return tx_forwarded_; }
  [[nodiscard]] std::uint64_t duplicated() const { return duplicated_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t rx_seen() const { return rx_seen_; }

  [[nodiscard]] std::uint32_t group_count() const { return mask_ + 1; }
  [[nodiscard]] const LogLinearHistogram& window_hist(std::uint32_t group) const {
    return groups_[group].window;
  }
  [[nodiscard]] const LogLinearHistogram& cumulative_hist(std::uint32_t group) const {
    return groups_[group].cumulative;
  }

 private:
  friend class RttPlane;

  struct Group {
    LogLinearHistogram window;
    LogLinearHistogram cumulative;
    explicit Group(HistogramConfig cfg) : window(cfg), cumulative(cfg) {}
  };

  std::vector<Group> groups_;
  std::uint32_t mask_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t tx_stamped_ = 0;
  std::uint64_t tx_forwarded_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t rx_seen_ = 0;
};

class RttPlane {
 public:
  RttPlane(RttPlaneConfig cfg, std::size_t shard_count);
  RttPlane(const RttPlane&) = delete;
  RttPlane& operator=(const RttPlane&) = delete;

  [[nodiscard]] const RttPlaneConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint32_t group_count() const { return group_count_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] RttShard& shard(std::size_t i) { return *shards_.at(i); }

  /// Closes the window ending at `end_ps`: merges every shard's window
  /// histograms (shard-index order — commutative, so shard-count
  /// invariant), computes per-group and overall p50/p99/p999, resets the
  /// window histograms in place, and publishes cumulative totals to the
  /// bound metric tree. Must run at a quiesced instant (it is wired as a
  /// ParallelRuntime window hook).
  void close_window(std::uint64_t end_ps);

  [[nodiscard]] const std::deque<RttWindow>& windows() const { return windows_; }
  [[nodiscard]] std::uint64_t windows_closed() const { return windows_closed_; }
  [[nodiscard]] std::uint64_t windows_evicted() const { return windows_evicted_; }
  [[nodiscard]] const RttWindow* latest_window() const {
    return windows_.empty() ? nullptr : &windows_.back();
  }

  /// Cumulative merged histogram across all shards and groups (quiesced).
  [[nodiscard]] LogLinearHistogram cumulative() const;
  [[nodiscard]] LogLinearHistogram cumulative_group(std::uint32_t group) const;

  // Cross-shard conservation sums (exact at quiesced instants).
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t tx_stamped() const;
  [[nodiscard]] std::uint64_t tx_forwarded() const;
  [[nodiscard]] std::uint64_t duplicated() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::uint64_t rx_seen() const;
  /// Stamp births minus deaths: (tx_stamped + tx_forwarded + duplicated) -
  /// (rx_seen + dropped). Negative means double counting — the invariant
  /// health::make_rtt_checker asserts.
  [[nodiscard]] std::int64_t in_flight() const;

  /// Mirrors cumulative plane totals into `tree` as `<prefix>.recorded`,
  /// `.tx_stamped`, `.rx_seen`, `.dropped`, `.windows` counters, latest-
  /// window `.p50/.p99/.p999` gauges and the cumulative `<prefix>.rtt_ns`
  /// histogram. Updated at every close_window (quiesced), so ordinary
  /// snapshots/exporters see the plane without any extra wiring.
  void bind_telemetry(MetricTree& tree, const std::string& prefix = "rtt");

  /// One window as a deterministic single-line JSON object (schema
  /// "moongen-rtt-window-v1") — the streaming exporter and the window-merge
  /// determinism test both serialize through here.
  static void write_window_json(std::ostream& os, const RttWindow& w);

 private:
  RttPlaneConfig cfg_;
  std::uint32_t group_count_ = 1;
  std::vector<std::unique_ptr<RttShard>> shards_;
  std::deque<RttWindow> windows_;
  std::uint64_t last_window_end_ps_ = 0;
  std::uint64_t windows_closed_ = 0;
  std::uint64_t windows_evicted_ = 0;
  std::uint64_t last_dropped_ = 0;

  CounterHandle tm_recorded_;
  CounterHandle tm_tx_stamped_;
  CounterHandle tm_rx_seen_;
  CounterHandle tm_dropped_;
  CounterHandle tm_windows_;
  GaugeHandle tm_p50_;
  GaugeHandle tm_p99_;
  GaugeHandle tm_p999_;
  GaugeHandle tm_in_flight_;
  HistogramHandle tm_hist_;
  std::uint64_t tm_recorded_published_ = 0;
  std::uint64_t tm_tx_stamped_published_ = 0;
  std::uint64_t tm_rx_seen_published_ = 0;
  std::uint64_t tm_dropped_published_ = 0;
};

}  // namespace moongen::telemetry
