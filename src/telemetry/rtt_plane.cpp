#include "telemetry/rtt_plane.hpp"

namespace moongen::telemetry {

namespace {

std::uint32_t round_up_pow2(std::uint32_t v) {
  if (v <= 1) return 1;
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

RttShard::RttShard(std::uint32_t flow_groups_pow2, HistogramConfig cfg)
    : mask_(flow_groups_pow2 - 1) {
  groups_.reserve(flow_groups_pow2);
  for (std::uint32_t i = 0; i < flow_groups_pow2; ++i) groups_.emplace_back(cfg);
}

RttPlane::RttPlane(RttPlaneConfig cfg, std::size_t shard_count) : cfg_(cfg) {
  group_count_ = round_up_pow2(cfg_.flow_groups);
  cfg_.flow_groups = group_count_;
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i)
    shards_.push_back(std::make_unique<RttShard>(group_count_, cfg_.histogram));
}

void RttPlane::close_window(std::uint64_t end_ps) {
  RttWindow w;
  w.start_ps = last_window_end_ps_;
  w.end_ps = end_ps;
  w.groups.resize(group_count_);

  LogLinearHistogram overall(cfg_.histogram);
  LogLinearHistogram merged(cfg_.histogram);
  for (std::uint32_t g = 0; g < group_count_; ++g) {
    merged.reset();
    // Shard-index order; merge is bucket-wise addition, so the result does
    // not depend on how frames were spread across shards.
    for (const auto& shard : shards_) merged.merge(shard->groups_[g].window);
    overall.merge(merged);
    w.groups[g] = {merged.total(), merged.percentile(50.0), merged.percentile(99.0),
                   merged.percentile(99.9)};
  }
  w.count = overall.total();
  w.min_ns = overall.min();
  w.max_ns = overall.max();
  w.p50 = overall.percentile(50.0);
  w.p99 = overall.percentile(99.0);
  w.p999 = overall.percentile(99.9);
  const std::uint64_t dropped_now = dropped();
  w.dropped = dropped_now - last_dropped_;
  last_dropped_ = dropped_now;

  for (auto& shard : shards_)
    for (auto& group : shard->groups_) group.window.reset();

  last_window_end_ps_ = end_ps;
  ++windows_closed_;
  windows_.push_back(std::move(w));
  if (windows_.size() > cfg_.max_windows) {
    windows_.pop_front();
    ++windows_evicted_;
  }

  // Publish cumulative totals into the bound metric tree (delta adds keep
  // the counters monotonic; we run quiesced, so sums are exact).
  const RttWindow& closed = windows_.back();
  tm_hist_.merge(overall);
  tm_recorded_.add(recorded() - tm_recorded_published_);
  tm_recorded_published_ = recorded();
  tm_tx_stamped_.add(tx_stamped() - tm_tx_stamped_published_);
  tm_tx_stamped_published_ = tx_stamped();
  tm_rx_seen_.add(rx_seen() - tm_rx_seen_published_);
  tm_rx_seen_published_ = rx_seen();
  tm_dropped_.add(dropped_now - tm_dropped_published_);
  tm_dropped_published_ = dropped_now;
  tm_windows_.add(1);
  tm_p50_.set(static_cast<double>(closed.p50));
  tm_p99_.set(static_cast<double>(closed.p99));
  tm_p999_.set(static_cast<double>(closed.p999));
  tm_in_flight_.set(static_cast<double>(in_flight()));
}

LogLinearHistogram RttPlane::cumulative() const {
  LogLinearHistogram out(cfg_.histogram);
  for (const auto& shard : shards_)
    for (const auto& group : shard->groups_) out.merge(group.cumulative);
  return out;
}

LogLinearHistogram RttPlane::cumulative_group(std::uint32_t group) const {
  LogLinearHistogram out(cfg_.histogram);
  for (const auto& shard : shards_) out.merge(shard->groups_[group & (group_count_ - 1)].cumulative);
  return out;
}

std::uint64_t RttPlane::recorded() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->recorded_;
  return n;
}

std::uint64_t RttPlane::tx_stamped() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->tx_stamped_;
  return n;
}

std::uint64_t RttPlane::tx_forwarded() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->tx_forwarded_;
  return n;
}

std::uint64_t RttPlane::duplicated() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->duplicated_;
  return n;
}

std::uint64_t RttPlane::dropped() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->dropped_;
  return n;
}

std::uint64_t RttPlane::rx_seen() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->rx_seen_;
  return n;
}

std::int64_t RttPlane::in_flight() const {
  const std::uint64_t births = tx_stamped() + tx_forwarded() + duplicated();
  const std::uint64_t deaths = rx_seen() + dropped();
  return static_cast<std::int64_t>(births) - static_cast<std::int64_t>(deaths);
}

void RttPlane::bind_telemetry(MetricTree& tree, const std::string& prefix) {
  if (tm_recorded_.valid()) return;  // already bound
  tm_recorded_ = tree.counter(prefix + ".recorded");
  tm_tx_stamped_ = tree.counter(prefix + ".tx_stamped");
  tm_rx_seen_ = tree.counter(prefix + ".rx_seen");
  tm_dropped_ = tree.counter(prefix + ".dropped");
  tm_windows_ = tree.counter(prefix + ".windows");
  tm_p50_ = tree.gauge(prefix + ".p50_ns");
  tm_p99_ = tree.gauge(prefix + ".p99_ns");
  tm_p999_ = tree.gauge(prefix + ".p999_ns");
  tm_in_flight_ = tree.gauge(prefix + ".in_flight");
  tm_hist_ = tree.histogram(prefix + ".rtt_ns", cfg_.histogram);
  // Seed with any history recorded before binding (mirrors the component
  // bind_telemetry convention), so books stay exact.
  tm_hist_.merge(cumulative());
  tm_recorded_published_ = recorded();
  tm_recorded_.add(tm_recorded_published_);
  tm_tx_stamped_published_ = tx_stamped();
  tm_tx_stamped_.add(tm_tx_stamped_published_);
  tm_rx_seen_published_ = rx_seen();
  tm_rx_seen_.add(tm_rx_seen_published_);
  tm_dropped_published_ = dropped();
  tm_dropped_.add(tm_dropped_published_);
  tm_windows_.add(windows_closed_);
}

void RttPlane::write_window_json(std::ostream& os, const RttWindow& w) {
  os << "{\"schema\":\"moongen-rtt-window-v1\",\"start_ps\":" << w.start_ps
     << ",\"end_ps\":" << w.end_ps << ",\"count\":" << w.count << ",\"dropped\":" << w.dropped
     << ",\"min_ns\":" << w.min_ns << ",\"max_ns\":" << w.max_ns << ",\"p50\":" << w.p50
     << ",\"p99\":" << w.p99 << ",\"p999\":" << w.p999 << ",\"groups\":[";
  for (std::size_t g = 0; g < w.groups.size(); ++g) {
    if (g > 0) os << ',';
    os << "{\"count\":" << w.groups[g].count << ",\"p50\":" << w.groups[g].p50
       << ",\"p99\":" << w.groups[g].p99 << ",\"p999\":" << w.groups[g].p999 << '}';
  }
  os << "]}\n";
}

}  // namespace moongen::telemetry
