// Event-driven behavioural model of a NIC port.
//
// Models the TX/RX paths of the Intel NICs the paper builds on:
//
//   software --post()--> memory descriptor ring --DMA--> on-chip FIFO
//       --per-queue HW rate limiter--> MAC serialization --> wire sink
//
//   wire --deliver_frame()--> FCS check (hardware drop of invalid frames)
//       --> PTP timestamp unit / RX-all timestamping --> steering --> RX ring
//
// The model reproduces exactly the hardware behaviours the paper's
// experiments depend on:
//  * the asynchronous push-pull TX model that makes software rate control
//    imprecise (Section 7.1): DMA fetches add jitter the software cannot
//    control;
//  * per-queue hardware rate limiting with quantized pacing (Section 7.2),
//    including the non-linear behaviour above ~9 Mpps (Section 7.5);
//  * PTP register timestamping with single-packet-in-flight semantics and
//    RX-all timestamping on the 82580 (Section 6);
//  * early hardware drop of frames with a bad FCS, incrementing only an
//    error counter (Section 8.1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "fault/fault.hpp"
#include "membuf/ring.hpp"
#include "nic/chip.hpp"
#include "nic/flow_director.hpp"
#include "nic/frame.hpp"
#include "nic/rss.hpp"
#include "sim/event_queue.hpp"
#include "sim/ptp_clock.hpp"
#include "telemetry/handles.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/rtt_plane.hpp"

namespace moongen::nic {

class Port;

/// Destination of transmitted frames (implemented by wire::Link).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  /// `tx_start_ps` is the time the first preamble bit left the MAC.
  virtual void on_frame(const Frame& frame, sim::SimTime tx_start_ps) = 0;
};

/// PTP packet filter configuration (Section 6): which message types are
/// timestamped. MoonGen's sampling trick sets the PTP type of background
/// packets to a value outside this mask.
struct PtpFilterConfig {
  bool enabled = true;
  /// Bitmask over PtpMessageType values 0-15; default: event messages.
  std::uint32_t message_type_mask = 0x0f;
  std::uint8_t version = 2;
  std::uint16_t udp_port = 319;
};

struct PortStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;  // wire bytes including overhead
  std::uint64_t rx_packets = 0;
  std::uint64_t rx_bytes = 0;
  /// Frames dropped in hardware before queue assignment (bad FCS / runts).
  std::uint64_t crc_errors = 0;
  /// Frames dropped because the RX ring was full.
  std::uint64_t rx_ring_drops = 0;
  /// Carrier transitions (injected link flaps).
  std::uint64_t link_down_events = 0;
  std::uint64_t link_up_events = 0;
};

/// Metric handles mirroring PortStats, resolved once by bind_telemetry
/// (per-shard tree handles; default-constructed handles are no-op sinks).
struct PortTelemetry {
  telemetry::CounterHandle tx_packets;
  telemetry::CounterHandle tx_bytes;
  telemetry::CounterHandle rx_packets;
  telemetry::CounterHandle rx_bytes;
  telemetry::CounterHandle crc_errors;
  telemetry::CounterHandle rx_ring_drops;
  /// `recover.<prefix>.link_resume`: carrier-up transitions after an outage.
  telemetry::CounterHandle link_resume;
};

/// One hardware transmit queue.
class TxQueueModel {
 public:
  /// Posts a frame descriptor from "software" (tail-pointer write). The
  /// frame is fetched by DMA asynchronously. Returns false if the
  /// descriptor ring is full.
  bool post(Frame frame);

  /// Number of free descriptor slots.
  [[nodiscard]] std::size_t ring_free() const { return ring_capacity_ - mem_ring_.size(); }

  /// Configures the hardware rate limiter to `wire_mbit` Mbit/s measured on
  /// the wire (including preamble/IFG). 0 disables rate control.
  void set_rate_wire_mbit(double wire_mbit);

  /// Convenience: configures the limiter for `mpps` packets/s of
  /// `frame_size`-byte frames.
  void set_rate_mpps(double mpps, std::size_t frame_size);

  /// Installs an infinite frame supply: the queue refills itself whenever
  /// its FIFO drains, modelling software that keeps the ring full (the only
  /// sensible mode under hardware rate control, Section 7.2).
  void set_refill(std::function<Frame()> generator);

  /// Bounds the on-chip FIFO lookahead (frames pulled from the refill
  /// source ahead of transmission). A small value keeps the generator's
  /// stream marking (timestamp sampling) responsive at low paced rates.
  void set_fifo_capacity(std::size_t frames) {
    fifo_capacity_frames_ = frames;
    fifo_.set_capacity(frames);
  }

  [[nodiscard]] double rate_wire_mbit() const { return rate_wire_mbit_; }

 private:
  friend class Port;

  /// True if this queue could put a frame on the wire now or in the future
  /// without further software action (used by the batching gate).
  [[nodiscard]] bool engaged() const {
    return !fifo_.empty() || !mem_ring_.empty() || static_cast<bool>(refill_);
  }

  Port* port_ = nullptr;
  int index_ = 0;
  std::size_t ring_capacity_ = 1024;
  membuf::BoundedRing<Frame> mem_ring_{1024};  // descriptors in main memory
  membuf::BoundedRing<Frame> fifo_{128};       // frames fetched into the on-chip FIFO
  std::size_t fifo_capacity_frames_ = 128;
  bool fetch_scheduled_ = false;

  double rate_wire_mbit_ = 0.0;      // 0 = uncontrolled
  double next_target_start_ps_ = 0;  // pacing target (exact accumulation)
  sim::SimTime next_allowed_ps_ = 0;
  bool pacing_initialized_ = false;

  std::function<Frame()> refill_;
};

/// One hardware receive queue.
class RxQueueModel {
 public:
  struct Entry {
    Frame frame;
    /// True arrival time of the last bit (when the frame is complete).
    sim::SimTime complete_ps = 0;
    /// Hardware RX timestamp (rx_timestamp_all chips): quantized PTP clock
    /// reading latched early in the receive path. 0 if not stamped.
    std::uint64_t hw_timestamp = 0;
  };

  using Callback = std::function<void(const Entry&)>;

  /// Invoked for every frame placed into the ring (used to wire up
  /// recorders and the DuT model).
  void set_callback(Callback cb) { callback_ = std::move(cb); }

  /// Removes and returns up to `max` frames from the ring (app-side recv).
  std::vector<Entry> drain(std::size_t max = SIZE_MAX);

  /// Allocation-free drain: appends up to `max` entries to `out` (which the
  /// caller clears and reuses across polls, like a driver's RX burst array).
  /// Returns the number of entries appended.
  std::size_t drain_into(std::vector<Entry>& out, std::size_t max = SIZE_MAX);

  [[nodiscard]] std::size_t pending() const { return ring_.size(); }
  void set_ring_capacity(std::size_t n) {
    ring_capacity_ = n;
    ring_.set_capacity(n);
  }

  /// Sink mode: entries go to the callback only and are not stored in the
  /// ring (for measurement taps like the inter-arrival recorder that would
  /// otherwise have to drain continuously).
  void set_store(bool store) { store_ = store; }

 private:
  friend class Port;

  membuf::BoundedRing<Entry> ring_{4096};
  std::size_t ring_capacity_ = 4096;
  bool store_ = true;
  Callback callback_;
};

/// Timing parameters of the PCIe/DMA path.
struct DmaTiming {
  sim::SimTime latency_ps = 400'000;        ///< descriptor fetch round trip (400 ns)
  sim::SimTime jitter_ps = 300'000;         ///< uniform extra delay (0..300 ns)
  std::size_t fetch_batch = 32;             ///< descriptors moved per DMA read
  sim::SimTime fetch_interval_ps = 100'000; ///< pause between chained fetches
};

class Port {
 public:
  Port(sim::EventQueue& events, ChipSpec spec, std::uint64_t link_mbit, std::uint64_t seed);

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  /// The engine this port's events run on (its shard in a parallel run).
  [[nodiscard]] sim::EventQueue& events() { return events_; }
  [[nodiscard]] const ChipSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t link_mbit() const { return link_mbit_; }
  [[nodiscard]] sim::SimTime byte_time_ps() const { return byte_time_ps_; }

  [[nodiscard]] TxQueueModel& tx_queue(int i) { return *tx_queues_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] RxQueueModel& rx_queue(int i) { return *rx_queues_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] int num_queues() const { return spec_.num_queues; }

  void set_tx_sink(FrameSink* sink) { sink_ = sink; }
  [[nodiscard]] FrameSink* tx_sink() const { return sink_; }

  /// Called by the attached link when a frame's first bit reaches this
  /// port's PHY (after cable propagation and (de)modulation).
  void deliver_frame(const Frame& frame, sim::SimTime first_bit_ps);

  [[nodiscard]] const PortStats& stats() const { return stats_; }

  /// Resolves `<prefix>.tx_packets` etc. handles from `tree` (the metric
  /// tree of this port's simulation shard). The tree must outlive the port.
  void bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix);
  /// Convenience: binds against `registry.shard(0)` (single-shard setups).
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix) {
    bind_telemetry(registry.shard(0), prefix);
  }

  /// Attaches this port to the always-on RTT plane: `rtt` is the RttShard
  /// of this port's simulation shard. The TX path stamps departures on
  /// every valid frame (once — forwarded frames keep their stamp) and the
  /// RX path accounts every stamped frame as seen or dropped. With
  /// `record` set, accepted stamped frames additionally fold their RTT
  /// into the shard's histograms — enable it on measurement endpoints
  /// (the generator's receive port), not on intermediate DuT ports.
  void attach_rtt(telemetry::RttShard* rtt, bool record) {
    rtt_ = rtt;
    rtt_record_ = record;
  }
  [[nodiscard]] bool rtt_attached() const { return rtt_ != nullptr; }

  // --- link state (propagated from the attached wire on carrier faults) ----
  /// Carrier up/down. Down pauses the transmit path (frames queue in the
  /// descriptor rings and FIFOs — backpressure to software); the up edge
  /// resumes transmission and counts as a recovery.
  void set_link_state(bool up);
  [[nodiscard]] bool link_up() const { return link_up_; }
  /// Invoked on every carrier transition (after internal state updates).
  void set_link_state_callback(std::function<void(bool)> cb) {
    link_state_callback_ = std::move(cb);
  }

  /// Arms this port's fault sites (currently: RX-ring overflow) against
  /// `plane` under the given site name.
  void install_faults(fault::FaultPlane& plane, const std::string& site);

  [[nodiscard]] sim::PtpClock& ptp_clock() { return ptp_clock_; }

  // --- PTP timestamp registers (single-slot, read-to-clear; Section 6) -----
  PtpFilterConfig& ptp_filter() { return ptp_filter_; }
  /// Reads and clears the TX timestamp register. Until read, no further TX
  /// packet is timestamped.
  std::optional<std::uint64_t> read_tx_timestamp();
  std::optional<std::uint64_t> read_rx_timestamp();

  /// Invoked (in the simulation) whenever the RX timestamp register latches
  /// a value — the model's stand-in for the interrupt/poll a driver uses to
  /// learn that a timestamp is available.
  void set_rx_stamp_callback(std::function<void(std::uint64_t)> cb) {
    rx_stamp_callback_ = std::move(cb);
  }

  /// Selects the RX queue for a frame with a custom function (overrides
  /// RSS when set; Flow Director rules still take precedence).
  void set_rx_steering(std::function<int(const Frame&)> steer) { steering_ = std::move(steer); }

  /// Enables Toeplitz RSS over the first `queues` receive queues.
  void enable_rss(int queues, RssHashType type = RssHashType::kIpv4Udp);
  [[nodiscard]] const RssUnit* rss() const { return rss_.get(); }

  /// Perfect-match flow steering; rules take precedence over RSS
  /// (Section 3.3: "configurable filters (e.g., Intel Flow Director)").
  [[nodiscard]] FlowDirector& flow_director() { return flow_director_; }

  DmaTiming& dma_timing() { return dma_; }

  /// True while the MAC is serializing a frame.
  [[nodiscard]] bool transmitting() const { return serializer_busy_; }

  /// Maximum frames serialized per engine event on the uncontrolled
  /// fast path (see DESIGN.md, "Event-engine fast path"). Wire timestamps
  /// are identical for any value; sinks and TX counters observe frames at
  /// batch granularity (skew bounded by one batch). 1 disables batching
  /// (one event per frame, the pre-batching behaviour).
  void set_tx_batch_frames(std::size_t n) { tx_batch_frames_ = n > 0 ? n : 1; }
  [[nodiscard]] std::size_t tx_batch_frames() const { return tx_batch_frames_; }

  /// Announces that an event at absolute time `t` must observe generator
  /// state mid-stream (e.g. the Timestamper arming a sample): no batched
  /// frame may start at or after `t`, so batched and unbatched runs pick up
  /// refill-source updates made at `t` on exactly the same frame. A barrier
  /// in the past is ignored; re-arm before each such event.
  void set_tx_batch_barrier(sim::SimTime t) { tx_batch_barrier_ = t; }

 private:
  friend class TxQueueModel;

  void notify_tx_work(int queue_index);
  void schedule_fetch(TxQueueModel& q);
  void fetch_descriptors(TxQueueModel& q);
  void try_transmit();
  void start_transmission(TxQueueModel& q);
  /// Serializes a run of back-to-back frames from an uncontrolled,
  /// solely-engaged queue in one engine event.
  void start_batch_transmission(TxQueueModel& q);
  /// True when `q` may use the batched fast path: no hardware rate limiter
  /// on `q` and every other queue idle, so arbitration is a no-op.
  [[nodiscard]] bool batching_allowed(const TxQueueModel& q) const;
  void apply_rate_limit(TxQueueModel& q, const Frame& frame, sim::SimTime tx_start);
  [[nodiscard]] bool frame_matches_ptp_filter(const Frame& frame) const;
  /// RTT-plane departure stamping at serialization start (same latch point
  /// as the PTP TX unit). Stamps a valid frame once; a frame that already
  /// carries a stamp (DuT re-transmission) keeps it and counts as
  /// forwarded. No-op without an attached plane — the frame metadata and
  /// every counter stay exactly as before.
  void stamp_departure(Frame& frame, sim::SimTime t0) {
    if (rtt_ == nullptr || !frame.fcs_valid) return;
    if (frame.tx_stamp_ps == 0) {
      // t0 == 0 would read as "unstamped"; nudge by 1 ps (invisible at the
      // plane's ns resolution).
      frame.tx_stamp_ps = t0 == 0 ? 1 : t0;
      rtt_->note_tx_stamped();
    } else {
      rtt_->note_tx_forwarded();
    }
  }

  sim::EventQueue& events_;
  ChipSpec spec_;
  std::uint64_t link_mbit_;
  sim::SimTime byte_time_ps_;
  sim::SimTime rate_tick_ps_;
  std::mt19937_64 rng_;

  std::vector<std::unique_ptr<TxQueueModel>> tx_queues_;
  std::vector<std::unique_ptr<RxQueueModel>> rx_queues_;
  FrameSink* sink_ = nullptr;

  bool serializer_busy_ = false;
  sim::SimTime last_busy_end_ = UINT64_MAX;  // sentinel: first frame aligns
  bool wake_scheduled_ = false;
  sim::SimTime scheduled_wake_ps_ = 0;
  int rr_next_ = 0;  // round-robin arbiter position
  std::size_t tx_batch_frames_ = 16;
  sim::SimTime tx_batch_barrier_ = 0;
  bool link_up_ = true;
  std::function<void(bool)> link_state_callback_;
  fault::FaultPoint fp_rx_overflow_;

  PortStats stats_;
  PortTelemetry tm_;
  telemetry::RttShard* rtt_ = nullptr;
  bool rtt_record_ = false;
  sim::PtpClock ptp_clock_;
  PtpFilterConfig ptp_filter_;
  std::optional<std::uint64_t> tx_stamp_register_;
  std::optional<std::uint64_t> rx_stamp_register_;
  std::function<void(std::uint64_t)> rx_stamp_callback_;
  std::function<int(const Frame&)> steering_;
  std::unique_ptr<RssUnit> rss_;
  FlowDirector flow_director_;
  DmaTiming dma_;
};

}  // namespace moongen::nic
