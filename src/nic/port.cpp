#include "nic/port.hpp"

#include <algorithm>
#include <cmath>

#include "proto/packet_view.hpp"

namespace moongen::nic {

namespace {

constexpr sim::SimTime align_up(sim::SimTime t, sim::SimTime grid) {
  return (t + grid - 1) / grid * grid;
}

}  // namespace

// ---------------------------------------------------------------------------
// TxQueueModel
// ---------------------------------------------------------------------------

bool TxQueueModel::post(Frame frame) {
  if (mem_ring_.size() >= ring_capacity_) return false;
  mem_ring_.push_back(std::move(frame));
  port_->notify_tx_work(index_);
  return true;
}

void TxQueueModel::set_rate_wire_mbit(double wire_mbit) {
  rate_wire_mbit_ = wire_mbit;
  pacing_initialized_ = false;
}

void TxQueueModel::set_rate_mpps(double mpps, std::size_t frame_size) {
  const double wire_bits = static_cast<double>(proto::wire_size(frame_size)) * 8.0;
  set_rate_wire_mbit(mpps * wire_bits);  // Mpps * bits = Mbit/s
}

void TxQueueModel::set_refill(std::function<Frame()> generator) {
  refill_ = std::move(generator);
  if (port_ != nullptr) port_->notify_tx_work(index_);
}

// ---------------------------------------------------------------------------
// RxQueueModel
// ---------------------------------------------------------------------------

std::vector<RxQueueModel::Entry> RxQueueModel::drain(std::size_t max) {
  std::vector<Entry> out;
  drain_into(out, max);
  return out;
}

std::size_t RxQueueModel::drain_into(std::vector<Entry>& out, std::size_t max) {
  const std::size_t n = std::min(max, ring_.size());
  out.reserve(out.size() + n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_.pop_front());
  return n;
}

// ---------------------------------------------------------------------------
// Port
// ---------------------------------------------------------------------------

Port::Port(sim::EventQueue& events, ChipSpec spec, std::uint64_t link_mbit, std::uint64_t seed)
    : events_(events),
      spec_(std::move(spec)),
      link_mbit_(link_mbit),
      byte_time_ps_(sim::byte_time_ps(link_mbit)),
      rng_(seed),
      ptp_clock_({.increment_ps = spec_.ptp_increment_ps,
                  .phase_step_ps = spec_.ptp_phase_step_ps},
                 seed ^ 0x9e3779b97f4a7c15ull) {
  // The pacing clock frequency scales with the link speed (Section 7.3).
  rate_tick_ps_ = spec_.rate_tick_at_max_speed_ps * (spec_.max_link_mbit / link_mbit_);
  tx_queues_.reserve(static_cast<std::size_t>(spec_.num_queues));
  rx_queues_.reserve(static_cast<std::size_t>(spec_.num_queues));
  for (int i = 0; i < spec_.num_queues; ++i) {
    auto txq = std::make_unique<TxQueueModel>();
    txq->port_ = this;
    txq->index_ = i;
    tx_queues_.push_back(std::move(txq));
    rx_queues_.push_back(std::make_unique<RxQueueModel>());
  }
}

void Port::notify_tx_work(int queue_index) {
  auto& q = *tx_queues_[static_cast<std::size_t>(queue_index)];
  if (!q.mem_ring_.empty()) schedule_fetch(q);
  if (q.refill_) try_transmit();
}

void Port::schedule_fetch(TxQueueModel& q) {
  if (q.fetch_scheduled_) return;
  q.fetch_scheduled_ = true;
  // The software cannot control when the NIC fetches the descriptor: PCIe
  // latency plus arbitration jitter (the root cause of software rate
  // control imprecision, Section 7.1).
  const sim::SimTime jitter =
      dma_.jitter_ps > 0 ? rng_() % dma_.jitter_ps : 0;
  events_.schedule_in_inline(dma_.latency_ps + jitter, [this, &q] { fetch_descriptors(q); });
}

void Port::fetch_descriptors(TxQueueModel& q) {
  q.fetch_scheduled_ = false;
  std::size_t moved = 0;
  while (!q.mem_ring_.empty() && q.fifo_.size() < q.fifo_capacity_frames_ &&
         moved < dma_.fetch_batch) {
    q.fifo_.push_back(q.mem_ring_.pop_front());
    ++moved;
  }
  if (!q.mem_ring_.empty()) {
    q.fetch_scheduled_ = true;
    events_.schedule_in_inline(dma_.fetch_interval_ps, [this, &q] { fetch_descriptors(q); });
  }
  try_transmit();
}

void Port::try_transmit() {
  if (serializer_busy_ || !link_up_) return;
  const sim::SimTime now = events_.now();
  const int n = spec_.num_queues;
  sim::SimTime earliest_blocked = UINT64_MAX;
  for (int step = 0; step < n; ++step) {
    const int idx = (rr_next_ + step) % n;
    auto& q = *tx_queues_[static_cast<std::size_t>(idx)];
    // Pull-on-demand: generate exactly the frame about to be considered, at
    // the time it is considered. Prefilling the FIFO to capacity here would
    // run the generator a whole FIFO ahead of the wire, so a frame marked
    // for timestamp sampling (SimLoadGen::mark_next_valid) would reach the
    // wire only after the pre-generated backlog drained — and batched and
    // unbatched runs would sample different packets.
    if (q.fifo_.empty() && q.refill_) q.fifo_.push_back(q.refill_());
    if (q.fifo_.empty()) continue;
    if (q.next_allowed_ps_ <= now) {
      rr_next_ = (idx + 1) % n;
      if (batching_allowed(q)) {
        start_batch_transmission(q);
      } else {
        start_transmission(q);
      }
      return;
    }
    earliest_blocked = std::min(earliest_blocked, q.next_allowed_ps_);
  }
  if (earliest_blocked != UINT64_MAX) {
    if (!wake_scheduled_ || earliest_blocked < scheduled_wake_ps_) {
      wake_scheduled_ = true;
      scheduled_wake_ps_ = earliest_blocked;
      events_.schedule_at_inline(earliest_blocked, [this, at = earliest_blocked] {
        if (wake_scheduled_ && scheduled_wake_ps_ == at) wake_scheduled_ = false;
        try_transmit();
      });
    }
  }
}

bool Port::batching_allowed(const TxQueueModel& q) const {
  if (tx_batch_frames_ <= 1) return false;
  if (q.rate_wire_mbit_ > 0.0) return false;  // pacing gaps: one event per frame
  // Only continuation frames batch: the first frame after an idle wire goes
  // through the one-event path, so a queue that engages while it serializes
  // gets its round-robin slot at the very next boundary.
  if (events_.now() != last_busy_end_) return false;
  // Batch only while `q` is the sole engaged queue: with every other queue
  // empty (no FIFO frames, no in-flight descriptors, no refill source) the
  // round-robin arbiter would pick `q` at every frame boundary anyway.
  for (const auto& other : tx_queues_) {
    if (other.get() != &q && other->engaged()) return false;
  }
  return true;
}

void Port::start_transmission(TxQueueModel& q) {
  Frame frame = q.fifo_.pop_front();

  // Transmissions start aligned to the MAC clock grid (the MAC and the
  // timestamp unit share one clock, Section 6.1) — except back-to-back
  // continuation frames, which follow immediately: real MACs absorb the
  // alignment into the inter-frame gap (deficit idle count), so line rate
  // is exact.
  sim::SimTime t0 = events_.now();
  if (t0 != last_busy_end_) t0 = align_up(t0, spec_.mac_cycle_ps);
  serializer_busy_ = true;

  // TX PTP timestamping, late in the transmit path: the register holds one
  // timestamp and must be read back before the next one is taken.
  if (!tx_stamp_register_.has_value() && frame_matches_ptp_filter(frame)) {
    tx_stamp_register_ = ptp_clock_.read(t0);
  }
  stamp_departure(frame, t0);

  apply_rate_limit(q, frame, t0);

  const sim::SimTime busy_until = t0 + frame.wire_bytes() * byte_time_ps_;
  last_busy_end_ = busy_until;
  // t0 is recomputed from the completion time rather than captured: the
  // [this, frame] closure fills InlineFunction's buffer exactly, and the
  // serialization span is fixed by the frame's wire bytes.
  events_.schedule_at_inline(busy_until, [this, frame = std::move(frame)] {
    const sim::SimTime t0 = events_.now() - frame.wire_bytes() * byte_time_ps_;
    stats_.tx_packets += 1;
    stats_.tx_bytes += frame.wire_bytes();
    tm_.tx_packets.add(1);
    tm_.tx_bytes.add(frame.wire_bytes());
    serializer_busy_ = false;
    if (sink_ != nullptr) sink_->on_frame(frame, t0);
    try_transmit();
  });
}

void Port::start_batch_transmission(TxQueueModel& q) {
  serializer_busy_ = true;
  const sim::SimTime now = events_.now();
  sim::SimTime t0 = now;
  if (t0 != last_busy_end_) t0 = align_up(t0, spec_.mac_cycle_ps);
  q.next_allowed_ps_ = 0;  // what apply_rate_limit does on the uncontrolled path

  // Serialize a run of back-to-back frames in ONE engine event. Frame i
  // starts exactly when frame i-1's last wire byte ends — the same instants
  // the one-event-per-frame path produces, because an uncontrolled sole
  // queue continues back-to-back at every completion. The sink is notified
  // at batch start with each frame's true tx_start: the link only schedules
  // absolute-time deliveries from it, so wire and RX timestamps are
  // byte-identical (asserted by PortBatching.WireTimestampsMatchUnbatched).
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  while (frames < tx_batch_frames_) {
    // Batch barrier: a consumer (the Timestamper) has announced an event at
    // `tx_batch_barrier_` that must observe the generator state mid-stream.
    // No frame may *start* at or after the barrier inside this batch; the
    // batch ends there and the per-frame arbitration at the completion event
    // re-reads the (possibly updated) refill source. Frames that merely
    // finish after the barrier are fine — the unbatched path generates them
    // before the barrier event too. A batch starting exactly at the barrier
    // runs after the barrier's own event (scheduled far earlier, so lower
    // sequence number at equal time): its first frame already sees the
    // update, but later frames must still be cut so their refill times match
    // the per-frame path. A barrier before the batch start is stale.
    if (tx_batch_barrier_ >= now && t0 >= tx_batch_barrier_ && (t0 > now || tx_batch_barrier_ > now))
      break;
    if (q.fifo_.empty()) {
      if (!q.refill_) break;
      q.fifo_.push_back(q.refill_());
    }
    Frame frame = q.fifo_.pop_front();
    if (!tx_stamp_register_.has_value() && frame_matches_ptp_filter(frame)) {
      tx_stamp_register_ = ptp_clock_.read(t0);
    }
    stamp_departure(frame, t0);
    const std::uint64_t wire = frame.wire_bytes();
    if (sink_ != nullptr) sink_->on_frame(frame, t0);
    t0 += wire * byte_time_ps_;
    bytes += wire;
    ++frames;
  }

  last_busy_end_ = t0;  // now the end of the batch's last frame
  // One completion event for the whole run; TX stats move at batch end
  // (bounded skew of tx_batch_frames_ frames vs. the per-frame path).
  events_.schedule_at_inline(t0, [this, frames, bytes] {
    stats_.tx_packets += frames;
    stats_.tx_bytes += bytes;
    tm_.tx_packets.add(frames);
    tm_.tx_bytes.add(bytes);
    serializer_busy_ = false;
    try_transmit();
  });
}

void Port::apply_rate_limit(TxQueueModel& q, const Frame& frame, sim::SimTime tx_start) {
  if (q.rate_wire_mbit_ <= 0.0) {
    q.next_allowed_ps_ = 0;
    return;
  }
  double ideal_gap_ps =
      static_cast<double>(frame.wire_bytes()) * 8e6 / q.rate_wire_mbit_;  // start-to-start

  // Section 7.5: above ~9 Mpps the rate control becomes unpredictable and
  // non-linear; model as erratic gap inflation.
  const double configured_pps = 1e12 / ideal_gap_ps;
  if (configured_pps > spec_.rate_control_reliable_pps) {
    std::uniform_real_distribution<double> inflate(1.0, 1.6);
    ideal_gap_ps *= inflate(rng_);
  }

  if (!q.pacing_initialized_) {
    q.pacing_initialized_ = true;
    q.next_target_start_ps_ = static_cast<double>(tx_start);
  }
  q.next_target_start_ps_ += ideal_gap_ps;

  // Pacing quantization: two independent quantization stages (credit
  // refresh and arbiter scan), each +-1 internal tick. The tick is 64 ns at
  // GbE and 6.4 ns at 10 GbE, which is why precision improves tenfold at
  // 10 GbE (Section 7.3). The resulting inter-departure spread reproduces
  // Table 4: ~50 % within one tick, everything within +-4 ticks.
  std::uniform_int_distribution<int> u(-1, 1);
  const int noise_ticks = u(rng_) + u(rng_);
  const double next =
      q.next_target_start_ps_ + static_cast<double>(noise_ticks) * static_cast<double>(rate_tick_ps_);
  q.next_allowed_ps_ = next > 0 ? static_cast<sim::SimTime>(next) : 0;
}

bool Port::frame_matches_ptp_filter(const Frame& frame) const {
  if (!ptp_filter_.enabled) return false;
  const auto& bytes = *frame.data;
  const auto pc = proto::classify({bytes.data(), bytes.size()});
  if (!pc.has_value()) return false;

  std::size_t ptp_offset = 0;
  if (pc->is_ptp_ethernet) {
    ptp_offset = pc->l3_offset;
  } else if (pc->is_udp && pc->udp_dst_port == ptp_filter_.udp_port) {
    // The unit refuses undersized UDP PTP packets (Section 6.4).
    if (frame.frame_size() < spec_.min_udp_ptp_size) return false;
    ptp_offset = pc->l7_offset;
  } else {
    return false;
  }
  if (bytes.size() < ptp_offset + 2) return false;
  const std::uint8_t msg_type = bytes[ptp_offset] & 0x0f;
  const std::uint8_t version = bytes[ptp_offset + 1] & 0x0f;
  if (version != ptp_filter_.version) return false;
  return (ptp_filter_.message_type_mask & (1u << msg_type)) != 0;
}

void Port::deliver_frame(const Frame& frame, sim::SimTime first_bit_ps) {
  const sim::SimTime complete =
      first_bit_ps + (frame.frame_size() + 8) * byte_time_ps_;  // preamble + frame
  // first_bit_ps is recovered from the completion time inside the closure
  // so [this, frame] stays within the inline buffer (see start_transmission).
  events_.schedule_at_inline(complete, [this, frame]() mutable {
    const sim::SimTime first_bit_ps = events_.now() - (frame.frame_size() + 8) * byte_time_ps_;
    // Hardware drop of bad-FCS frames and runts: they never reach a receive
    // queue, only the error counter moves (Section 8.1).
    if (!frame.fcs_valid || frame.frame_size() < proto::kMinFrameSize) {
      stats_.crc_errors += 1;
      tm_.crc_errors.add(1);
      // A stamped frame corrupted on the wire dies here: account the stamp
      // as dropped, never silently shrink the RTT population.
      if (rtt_ != nullptr && frame.tx_stamp_ps != 0) rtt_->note_dropped();
      return;
    }
    stats_.rx_packets += 1;
    stats_.rx_bytes += frame.frame_size();
    tm_.rx_packets.add(1);
    tm_.rx_bytes.add(frame.frame_size());

    std::uint64_t hw_ts = 0;
    if (spec_.rx_timestamp_all) {
      // 82580: timestamp prepended to every packet buffer, latched early in
      // the receive path.
      hw_ts = ptp_clock_.read(first_bit_ps);
    }
    if (!rx_stamp_register_.has_value() && frame_matches_ptp_filter(frame)) {
      rx_stamp_register_ = ptp_clock_.read(first_bit_ps);
      if (rx_stamp_callback_) rx_stamp_callback_(*rx_stamp_register_);
    }

    // Steering precedence: Flow Director perfect-match rules, then the
    // custom hook, then RSS, else queue 0 (Section 3.3).
    int queue_index = 0;
    const auto verdict = flow_director_.match(frame);
    if (verdict.matched) {
      if (verdict.drop) {  // filtered in hardware
        if (rtt_ != nullptr && frame.tx_stamp_ps != 0) rtt_->note_dropped();
        return;
      }
      queue_index = verdict.queue;
    } else if (steering_) {
      queue_index = steering_(frame);
    } else if (rss_) {
      queue_index = rss_->steer(frame);
    }
    auto& q = *rx_queues_[static_cast<std::size_t>(queue_index)];
    // Injected overflow takes the same path as a genuinely full ring: only
    // the drop counter moves, software sees a gap in the stream. A genuine
    // overflow needs a stored ring, but the injected one models a MAC-FIFO
    // drop and fires in callback-only (sink) mode too — real NICs lose
    // frames under RX pressure whether or not software polls a ring. The
    // full-ring check stays first so stored-mode probe sequences (and thus
    // per-site RNG streams) are unchanged.
    const bool ring_full = q.store_ && q.ring_.size() >= q.ring_capacity_;
    if (ring_full ||
        (fp_rx_overflow_.installed() && fp_rx_overflow_.fire(events_.now()) != nullptr)) {
      stats_.rx_ring_drops += 1;
      tm_.rx_ring_drops.add(1);
      if (rtt_ != nullptr && frame.tx_stamp_ps != 0) rtt_->note_dropped();
      return;
    }
    // Always-on RTT plane: every accepted stamped frame is accounted, and
    // measurement endpoints additionally fold arrival - departure into the
    // shard's flow-group histogram. first_bit_ps is the same latch point
    // the PTP RX unit uses, so sampled and always-on paths agree.
    if (rtt_ != nullptr && frame.tx_stamp_ps != 0) {
      rtt_->note_rx_seen();
      if (rtt_record_) {
        const std::uint64_t rtt_ps =
            first_bit_ps > frame.tx_stamp_ps ? first_bit_ps - frame.tx_stamp_ps : 0;
        rtt_->record_ps(frame.flow, rtt_ps);
      }
    }
    RxQueueModel::Entry entry{std::move(frame), events_.now(), hw_ts};
    if (q.store_) {
      if (q.callback_) {
        // Invoke with the local copy: the callback may drain the ring
        // (polling DuT), invalidating anything stored there.
        q.ring_.push_back(entry);
        q.callback_(entry);
      } else {
        q.ring_.push_back(std::move(entry));
      }
    } else if (q.callback_) {
      q.callback_(entry);
    }
  });
}

void Port::bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix) {
  if (tm_.tx_packets.valid()) return;  // already bound; re-seeding would double-count
  tm_.tx_packets = tree.counter(prefix + ".tx_packets");
  tm_.tx_bytes = tree.counter(prefix + ".tx_bytes");
  tm_.rx_packets = tree.counter(prefix + ".rx_packets");
  tm_.rx_bytes = tree.counter(prefix + ".rx_bytes");
  tm_.crc_errors = tree.counter(prefix + ".crc_errors");
  tm_.rx_ring_drops = tree.counter(prefix + ".rx_ring_drops");
  tm_.link_resume = tree.counter("recover." + prefix + ".link_resume");
  // Re-binding mid-run would double-count history; seed the counters with
  // the current totals so registry and PortStats agree from this point on.
  tm_.tx_packets.add(stats_.tx_packets);
  tm_.tx_bytes.add(stats_.tx_bytes);
  tm_.rx_packets.add(stats_.rx_packets);
  tm_.rx_bytes.add(stats_.rx_bytes);
  tm_.crc_errors.add(stats_.crc_errors);
  tm_.rx_ring_drops.add(stats_.rx_ring_drops);
  tm_.link_resume.add(stats_.link_up_events);
}

void Port::set_link_state(bool up) {
  if (up == link_up_) return;
  link_up_ = up;
  if (up) {
    stats_.link_up_events += 1;
    tm_.link_resume.add(1);
    // Resume: drain everything that queued up during the outage.
    try_transmit();
  } else {
    stats_.link_down_events += 1;
  }
  if (link_state_callback_) link_state_callback_(up);
}

void Port::install_faults(fault::FaultPlane& plane, const std::string& site) {
  fp_rx_overflow_ = plane.point(fault::FaultKind::kRxOverflow, site);
}

void Port::enable_rss(int queues, RssHashType type) {
  rss_ = std::make_unique<RssUnit>(queues, type);
}

std::optional<std::uint64_t> Port::read_tx_timestamp() {
  auto v = tx_stamp_register_;
  tx_stamp_register_.reset();
  return v;
}

std::optional<std::uint64_t> Port::read_rx_timestamp() {
  auto v = rx_stamp_register_;
  rx_stamp_register_.reset();
  return v;
}

}  // namespace moongen::nic
