// Chip capability descriptions for the NIC models.
//
// One ChipSpec per NIC family evaluated in the paper (Sections 3.3, 5.4,
// 6.1, 7, 8.1), with the datasheet-documented properties that the
// experiments depend on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sim/time.hpp"

namespace moongen::nic {

struct ChipSpec {
  std::string name;

  /// TX/RX queues per port (82599/X540: 128).
  int num_queues = 128;

  /// Supported link speeds in Mbit/s (highest first).
  std::uint64_t max_link_mbit = 10'000;

  // --- PTP timestamp unit (Section 6.1) -----------------------------------
  /// Timer increment period: readings are quantized to this.
  /// 82599: 12.8 ns (incremented every *two* 156.25 MHz cycles),
  /// X540: 6.4 ns, 82580: 64 ns.
  sim::SimTime ptp_increment_ps = 6'400;
  /// 82580 only: readings carry a per-reset constant offset k * 8 ns.
  sim::SimTime ptp_phase_step_ps = 0;
  /// 82580 can prepend an RX timestamp to *every* received packet; the
  /// 10 GbE chips only latch one timestamp in a register that must be read
  /// back before the next packet can be stamped.
  bool rx_timestamp_all = false;
  /// Minimum UDP PTP packet size the unit accepts (Section 6.4: UDP PTP
  /// packets smaller than 80 bytes are refused; Ethernet PTP is not).
  std::size_t min_udp_ptp_size = 80;

  /// MAC internal cycle: frame transmissions start aligned to this grid
  /// (the MAC and the timestamp unit share one clock, which is why repeated
  /// latency measurements are deterministic, Section 6.1).
  sim::SimTime mac_cycle_ps = 6'400;

  // --- TX path -------------------------------------------------------------
  /// Smallest on-chip buffer; conceals LuaJIT pause times (Section 3.2).
  std::size_t tx_fifo_bytes = 160 * 1024;
  /// NICs refuse frames with a wire length below 33 bytes (Section 8.1).
  std::size_t min_wire_len = 33;
  /// Maximum packet rate when pushing shorter-than-minimum frames:
  /// 15.6 Mpps on 82599/X540 (Section 8.1).
  double short_frame_max_pps = 15.6e6;

  // --- Hardware rate control (Section 7) ------------------------------------
  bool hw_rate_control = true;
  /// Internal pacing clock tick at max link speed; scaled by the link-speed
  /// ratio when operating slower (Section 7.3: "frequency ... is scaled up
  /// by a factor of 10 when operating at 10 GbE compared to GbE").
  sim::SimTime rate_tick_at_max_speed_ps = 6'400;
  /// Above ~9 Mpps per queue the rate control behaves unpredictably and
  /// non-linearly on X520/X540 (Section 7.5).
  double rate_control_reliable_pps = 9e6;

  // --- First-generation 40 GbE quirks (Section 5.4) -------------------------
  /// Per-port packet-engine cap: cannot reach line rate for <= 128 B frames.
  std::optional<double> port_pps_cap;
  /// Aggregate (dual-port) MAC bandwidth cap in Mbit/s.
  std::optional<std::uint64_t> aggregate_mbit_cap;
  /// Aggregate (dual-port) packet rate cap.
  std::optional<double> aggregate_pps_cap;
};

/// Intel 82599 10 GbE controller (fiber, SFP+).
ChipSpec intel_82599();
/// Intel X540 10 GbE controller (10GBASE-T copper).
ChipSpec intel_x540();
/// Intel 82580 GbE controller (can timestamp all received packets).
ChipSpec intel_82580();
/// Intel XL710 40 GbE controller (first-generation, bandwidth-limited).
ChipSpec intel_xl710();

}  // namespace moongen::nic
