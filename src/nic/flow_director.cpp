#include "nic/flow_director.hpp"

#include "proto/packet_view.hpp"

namespace moongen::nic {

FlowDirector::Verdict FlowDirector::match(const Frame& frame) const {
  const auto& bytes = *frame.data;
  const auto pc = proto::classify({bytes.data(), bytes.size()});
  if (!pc.has_value() || pc->ether_type != proto::EtherType::kIPv4) return {};

  const auto* ip = reinterpret_cast<const proto::Ipv4Header*>(bytes.data() + pc->l3_offset);
  std::uint16_t sport = 0, dport = 0;
  if ((pc->l4_protocol == proto::IpProtocol::kUdp ||
       pc->l4_protocol == proto::IpProtocol::kTcp) &&
      bytes.size() >= pc->l4_offset + 4) {
    sport = static_cast<std::uint16_t>(bytes[pc->l4_offset] << 8 | bytes[pc->l4_offset + 1]);
    dport = static_cast<std::uint16_t>(bytes[pc->l4_offset + 2] << 8 | bytes[pc->l4_offset + 3]);
  }

  for (const auto& rule : rules_) {
    if (rule.src_ip && *rule.src_ip != ip->src()) continue;
    if (rule.dst_ip && *rule.dst_ip != ip->dst()) continue;
    if (rule.protocol && *rule.protocol != pc->l4_protocol) continue;
    if (rule.src_port && *rule.src_port != sport) continue;
    if (rule.dst_port && *rule.dst_port != dport) continue;
    ++matches_;
    return Verdict{true, rule.drop, rule.queue};
  }
  return {};
}

}  // namespace moongen::nic
