#include "nic/rss.hpp"

#include <algorithm>
#include <cstring>

#include "proto/packet_view.hpp"

namespace moongen::nic {

std::uint32_t toeplitz_hash(std::span<const std::uint8_t> input,
                            std::span<const std::uint8_t> key) {
  // The hash XORs, for every set bit i of the input, the 32-bit window of
  // the key starting at bit i.
  std::uint32_t result = 0;
  // Running 32-bit window over the key, shifted left bit by bit.
  std::uint32_t window = static_cast<std::uint32_t>(key[0]) << 24 |
                         static_cast<std::uint32_t>(key[1]) << 16 |
                         static_cast<std::uint32_t>(key[2]) << 8 | key[3];
  std::size_t next_key_byte = 4;
  for (std::uint8_t byte : input) {
    for (int bit = 7; bit >= 0; --bit) {
      if (byte & (1u << bit)) result ^= window;
      // Shift the window left by one, pulling in the next key bit.
      const std::uint8_t next =
          next_key_byte < key.size() ? key[next_key_byte] : 0;
      window = (window << 1) | ((next >> bit) & 1u);
      if (bit == 0) ++next_key_byte;
    }
  }
  return result;
}

RssUnit::RssUnit(int num_queues, RssHashType type, std::span<const std::uint8_t> key)
    : type_(type), key_len_(std::min(key.size(), key_.size())) {
  std::memcpy(key_.data(), key.data(), key_len_);
  // Default indirection: round-robin over the queues, as drivers configure.
  for (std::size_t i = 0; i < kRetaSize; ++i)
    reta_[i] = static_cast<int>(i % static_cast<std::size_t>(num_queues));
}

std::uint32_t RssUnit::hash(const Frame& frame) const {
  const auto& bytes = *frame.data;
  const auto pc = proto::classify({bytes.data(), bytes.size()});
  if (!pc.has_value() || pc->ether_type != proto::EtherType::kIPv4) return 0;
  if (bytes.size() < pc->l4_offset) return 0;

  // Hash input: src IP, dst IP [, src port, dst port] in network order.
  std::uint8_t input[12];
  std::size_t len = 8;
  const auto* ip = reinterpret_cast<const proto::Ipv4Header*>(bytes.data() + pc->l3_offset);
  std::memcpy(input, &ip->src_be, 4);
  std::memcpy(input + 4, &ip->dst_be, 4);

  const bool want_udp = type_ == RssHashType::kIpv4Udp && pc->l4_protocol == proto::IpProtocol::kUdp;
  const bool want_tcp = type_ == RssHashType::kIpv4Tcp && pc->l4_protocol == proto::IpProtocol::kTcp;
  if ((want_udp || want_tcp) && bytes.size() >= pc->l4_offset + 4) {
    std::memcpy(input + 8, bytes.data() + pc->l4_offset, 4);  // both ports
    len = 12;
  }
  return toeplitz_hash({input, len}, {key_.data(), key_len_});
}

int RssUnit::steer(const Frame& frame) const {
  const std::uint32_t h = hash(frame);
  return reta_[h & (kRetaSize - 1)];
}

}  // namespace moongen::nic
