// Frames travelling through the simulated hardware.
//
// Simulated frames carry real header bytes (so PTP filters, RSS and the
// DuT's forwarding logic can parse them) shared via shared_ptr: generators
// build one template and send it millions of times without copying.
// The FCS is represented by a validity flag rather than literal trailing
// bytes; the CRC32 math itself is exercised by the proto module and its
// tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "proto/headers.hpp"

namespace moongen::nic {

// Member order is deliberate: flow and fcs_valid pack into the tail
// padding, keeping sizeof(Frame) at 40 so per-frame event closures
// ([port, frame]) still fit InlineFunction's 48-byte inline buffer.
struct Frame {
  /// Frame bytes excluding the 4-byte FCS.
  std::shared_ptr<const std::vector<std::uint8_t>> data;
  /// Generator-assigned sequence number for end-to-end matching.
  std::uint64_t seq = 0;
  /// Departure stamp of the always-on RTT plane (ps; 0 = unstamped). Set
  /// once at first MAC serialization of a valid frame when a plane is
  /// attached — the same payload-stamp idea as the RPC codec, but carried
  /// as frame metadata so the wire bytes (and thus captures, RSS, CRC
  /// behaviour) are untouched. Forwarded copies keep the stamp, so the
  /// receive side measures true end-to-end latency.
  std::uint64_t tx_stamp_ps = 0;
  /// Flow-group label for the RTT plane's per-group histograms (masked by
  /// the plane's group count; 0 is the default group).
  std::uint32_t flow = 0;
  /// False for the deliberately corrupted frames of the CRC-based rate
  /// control (paper Section 8); receivers drop these in hardware.
  bool fcs_valid = true;

  /// Frame size including FCS (the "packet size" of the paper).
  [[nodiscard]] std::size_t frame_size() const { return data->size() + proto::kFcsSize; }
  /// Bytes occupied on the wire: frame + preamble + SFD + IFG.
  [[nodiscard]] std::size_t wire_bytes() const { return frame_size() + proto::kWireOverhead; }
};

inline Frame make_frame(std::vector<std::uint8_t> bytes, bool fcs_valid = true,
                        std::uint64_t seq = 0) {
  return Frame{.data = std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes)),
               .seq = seq,
               .fcs_valid = fcs_valid};
}

/// Builds an opaque filler frame of `wire_len` bytes on the wire (>= 33),
/// used as an invalid gap frame by the software rate control.
///
/// Gap frames are all-zero payloads that differ only in length, and the CRC
/// rate control emits one or more per valid packet — so the payloads are
/// interned: one immutable shared buffer per distinct size, cached
/// per-thread (generators on different TaskSet threads never contend).
inline Frame make_gap_frame(std::size_t wire_len, std::uint64_t seq = 0) {
  const std::size_t data_len =
      wire_len >= proto::kWireOverhead + proto::kFcsSize + 1
          ? wire_len - proto::kWireOverhead - proto::kFcsSize
          : 1;
  thread_local std::vector<std::shared_ptr<const std::vector<std::uint8_t>>> cache;
  if (data_len >= cache.size()) cache.resize(data_len + 1);
  auto& slot = cache[data_len];
  if (!slot) slot = std::make_shared<const std::vector<std::uint8_t>>(data_len, std::uint8_t{0});
  return Frame{.data = slot, .seq = seq, .fcs_valid = false};
}

}  // namespace moongen::nic
