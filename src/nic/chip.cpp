#include "nic/chip.hpp"

namespace moongen::nic {

ChipSpec intel_82599() {
  ChipSpec spec;
  spec.name = "82599";
  spec.num_queues = 128;
  spec.max_link_mbit = 10'000;
  spec.ptp_increment_ps = 12'800;  // timer increments every two 6.4 ns cycles
  spec.tx_fifo_bytes = 160 * 1024;
  return spec;
}

ChipSpec intel_x540() {
  ChipSpec spec;
  spec.name = "X540";
  spec.num_queues = 128;
  spec.max_link_mbit = 10'000;
  spec.ptp_increment_ps = 6'400;
  spec.tx_fifo_bytes = 160 * 1024;
  return spec;
}

ChipSpec intel_82580() {
  ChipSpec spec;
  spec.name = "82580";
  spec.num_queues = 8;
  spec.max_link_mbit = 1'000;
  spec.ptp_increment_ps = 64'000;
  spec.ptp_phase_step_ps = 8'000;  // readings are n*64ns + k*8ns
  spec.rx_timestamp_all = true;
  spec.tx_fifo_bytes = 24 * 1024;
  spec.rate_tick_at_max_speed_ps = 64'000;
  spec.mac_cycle_ps = 8'000;  // 125 MHz GbE MAC
  return spec;
}

ChipSpec intel_xl710() {
  ChipSpec spec;
  spec.name = "XL710";
  spec.num_queues = 384;
  spec.max_link_mbit = 40'000;
  spec.ptp_increment_ps = 6'400;
  spec.hw_rate_control = false;  // not supported by MoonGen on this chip
  // Hardware bottlenecks (Section 5.4 / Intel product brief [16]):
  // line rate only for frames larger than 128 B; ~30 Mpps per-port packet
  // engine cap (reached with two cores); 42 Mpps / 50 Gbit/s dual-port.
  spec.port_pps_cap = 30e6;
  spec.aggregate_mbit_cap = 50'000;
  spec.aggregate_pps_cap = 42e6;
  return spec;
}

}  // namespace moongen::nic
