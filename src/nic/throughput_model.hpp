// Analytic throughput/capacity model.
//
// Implements the paper's own performance methodology (Sections 5.1, 5.6.3):
// make the CPU the bottleneck, express generator cost as cycles/packet, and
// predict throughput as the minimum of the CPU budget, the line rate, and
// the NIC's hardware caps. The scaling benchmarks (Figures 2-4) measure the
// real cycles/packet of our hot loops with the TSC and feed them through
// this model, exactly as Section 5.6.3 validates (predicted 10.47 +- 0.18
// Mpps vs. measured 10.3 Mpps).
#pragma once

#include <cstddef>
#include <cstdint>

#include "nic/chip.hpp"

namespace moongen::nic {

/// Line rate in packets/s for `frame_size`-byte frames (incl. FCS) on a
/// `link_mbit` link, accounting for preamble/SFD/IFG.
double line_rate_pps(std::uint64_t link_mbit, std::size_t frame_size);

struct ThroughputQuery {
  std::size_t frame_size = 64;      ///< including FCS
  int cores = 1;
  double cycles_per_packet = 200;   ///< measured per-core generator cost
  double cpu_hz = 2.4e9;
  std::uint64_t link_mbit = 10'000; ///< per port
  int ports = 1;                    ///< traffic is spread evenly over ports
  const ChipSpec* chip = nullptr;   ///< optional hardware caps (XL710)
};

enum class Bottleneck { kCpu, kLineRate, kNicHardware };

struct ThroughputResult {
  double total_pps = 0;
  double total_wire_mbit = 0;  ///< L1 rate including per-frame overhead
  Bottleneck bottleneck = Bottleneck::kCpu;
};

/// Predicts achievable generator throughput for the given configuration.
ThroughputResult predict_throughput(const ThroughputQuery& query);

}  // namespace moongen::nic
