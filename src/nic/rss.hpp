// Receive Side Scaling: Toeplitz hash and indirection table.
//
// Incoming traffic is distributed over receive queues by hashing protocol
// headers (paper Section 3.3). This is the Microsoft-specified Toeplitz
// hash used by the Intel NICs, with the standard 40-byte secret key and a
// 128-entry indirection table, as on the 82599/X540.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "nic/frame.hpp"

namespace moongen::nic {

/// The de-facto standard RSS key (used in Microsoft's verification suite
/// and as the default by many drivers).
inline constexpr std::array<std::uint8_t, 40> kDefaultRssKey = {
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
    0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
    0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
    0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};

/// Toeplitz hash over `input` with `key` (key must be at least
/// input.size() + 4 bytes long).
std::uint32_t toeplitz_hash(std::span<const std::uint8_t> input,
                            std::span<const std::uint8_t> key = kDefaultRssKey);

/// RSS hash input selection, as configurable on the Intel chips.
enum class RssHashType {
  kIpv4,     ///< src IP + dst IP
  kIpv4Udp,  ///< src IP + dst IP + src port + dst port
  kIpv4Tcp,
};

/// Hardware RSS unit: computes the hash of a frame and maps it through the
/// indirection table to a queue index. Frames the configured hash type
/// does not cover (non-IP, fragments) go to queue 0, as in hardware.
class RssUnit {
 public:
  RssUnit(int num_queues, RssHashType type = RssHashType::kIpv4Udp,
          std::span<const std::uint8_t> key = kDefaultRssKey);

  /// Queue index for a frame.
  [[nodiscard]] int steer(const Frame& frame) const;

  /// Raw hash for a frame; 0 if the frame is not hashable.
  [[nodiscard]] std::uint32_t hash(const Frame& frame) const;

  /// The 128-entry indirection table (hash & 0x7f -> queue), retarget-able
  /// like the hardware RETA register.
  [[nodiscard]] int indirection(std::size_t slot) const {
    return reta_[slot % kRetaSize];
  }
  void set_indirection(std::size_t slot, int queue) { reta_[slot % kRetaSize] = queue; }

  static constexpr std::size_t kRetaSize = 128;

 private:
  RssHashType type_;
  std::array<std::uint8_t, 52> key_{};
  std::size_t key_len_;
  std::array<int, kRetaSize> reta_{};
};

}  // namespace moongen::nic
