#include "nic/throughput_model.hpp"

#include <algorithm>

#include "proto/headers.hpp"

namespace moongen::nic {

double line_rate_pps(std::uint64_t link_mbit, std::size_t frame_size) {
  const double wire_bits = static_cast<double>(proto::wire_size(frame_size)) * 8.0;
  return static_cast<double>(link_mbit) * 1e6 / wire_bits;
}

ThroughputResult predict_throughput(const ThroughputQuery& q) {
  const double cpu_pps = static_cast<double>(q.cores) * q.cpu_hz / q.cycles_per_packet;
  const double line_pps = static_cast<double>(q.ports) * line_rate_pps(q.link_mbit, q.frame_size);

  double hw_pps = line_pps;  // no extra hardware cap by default
  if (q.chip != nullptr) {
    if (q.chip->port_pps_cap.has_value())
      hw_pps = std::min(hw_pps, *q.chip->port_pps_cap * q.ports);
    if (q.ports > 1 && q.chip->aggregate_pps_cap.has_value())
      hw_pps = std::min(hw_pps, *q.chip->aggregate_pps_cap);
    if (q.ports > 1 && q.chip->aggregate_mbit_cap.has_value()) {
      const double wire_bits = static_cast<double>(proto::wire_size(q.frame_size)) * 8.0;
      hw_pps = std::min(hw_pps, static_cast<double>(*q.chip->aggregate_mbit_cap) * 1e6 / wire_bits);
    }
  }

  ThroughputResult r;
  r.total_pps = std::min({cpu_pps, line_pps, hw_pps});
  if (r.total_pps == cpu_pps)
    r.bottleneck = Bottleneck::kCpu;
  else if (r.total_pps == line_pps)
    r.bottleneck = Bottleneck::kLineRate;
  else
    r.bottleneck = Bottleneck::kNicHardware;
  r.total_wire_mbit =
      r.total_pps * static_cast<double>(proto::wire_size(q.frame_size)) * 8.0 / 1e6;
  return r;
}

}  // namespace moongen::nic
