// Intel Flow Director: exact-match flow steering.
//
// The paper's receive path assigns queues "via configurable filters (e.g.,
// Intel Flow Director) or hashing on protocol headers (RSS)" (Section
// 3.3). This models the perfect-match filter mode of the 82599/X540:
// masked 5-tuple rules map matching packets to a fixed queue (or drop
// them); everything else falls through to RSS or queue 0.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nic/frame.hpp"
#include "proto/headers.hpp"

namespace moongen::nic {

/// One perfect-match rule. Unset (nullopt) fields match anything.
struct FlowRule {
  std::optional<proto::IPv4Address> src_ip;
  std::optional<proto::IPv4Address> dst_ip;
  std::optional<proto::IpProtocol> protocol;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;

  /// Action: deliver to this queue, or drop when `drop` is set.
  int queue = 0;
  bool drop = false;
};

class FlowDirector {
 public:
  /// Adds a rule; rules are evaluated in insertion order, first match wins
  /// (the hardware's priority semantics for perfect filters).
  void add_rule(FlowRule rule) { rules_.push_back(rule); }
  void clear() { rules_.clear(); }
  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }

  struct Verdict {
    bool matched = false;
    bool drop = false;
    int queue = 0;
  };

  /// Matches a frame against the rule table.
  [[nodiscard]] Verdict match(const Frame& frame) const;

  [[nodiscard]] std::uint64_t matches() const { return matches_; }

 private:
  std::vector<FlowRule> rules_;
  mutable std::uint64_t matches_ = 0;
};

}  // namespace moongen::nic
