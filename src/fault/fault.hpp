// Deterministic fault-injection plane.
//
// The paper's headline measurements assume a perfect link; real deployments
// of a traffic generator must *produce* loss (RFC 2544-style searches, DuT
// overload, Section 8.3) and survive it. This module provides a seeded,
// declarative fault plane:
//
//   * a `FaultSpec` names the faults to inject — kind, site, probability,
//     burst length, time window, magnitude — and carries one seed;
//   * a `FaultPlane` turns the spec into per-site `FaultPoint` handles that
//     instrumented components (wire::Link, nic::Port, membuf::Mempool,
//     dut::Forwarder) probe on their fault paths;
//   * scheduled faults (PTP clock steps/drift changes, link flap recovery)
//     run as events on the simulation's event queue.
//
// Determinism contract: every site draws from its own RNG stream, seeded
// from the spec seed and the site name. For a fixed spec, the per-site fire
// sequence is byte-identical run to run and independent of what other sites
// do — loss-rate tests are exact, not statistical.
//
// Zero-cost contract: a default-constructed (or unmatched) FaultPoint holds
// a null site pointer; `fire()` is a single inlined null check. Components
// additionally gate their fault blocks on `installed()`, so a run without a
// FaultPlane executes the pre-fault-plane code byte for byte.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/handles.hpp"

namespace moongen::sim {
class EventQueue;
class PtpClock;
}  // namespace moongen::sim

namespace moongen::telemetry {
class MetricRegistry;
}  // namespace moongen::telemetry

namespace moongen::fault {

enum class FaultKind : std::uint8_t {
  kFrameLoss,      ///< wire::Link: drop the frame
  kFrameCorrupt,   ///< wire::Link: flip a byte, invalidating the FCS
  kFrameReorder,   ///< wire::Link: hold the frame back (lands after later ones)
  kFrameDuplicate, ///< wire::Link: deliver the frame twice
  kLinkFlap,       ///< wire::Link: carrier down for `param` ps, then up
  kRxOverflow,     ///< nic::Port: drop as if the RX ring were full
  kAllocFail,      ///< membuf::Mempool: transient allocation failure
  kStall,          ///< dut::Forwarder: delay the poll loop by `param` ps
  kClockStep,      ///< sim::PtpClock: one-shot adjust by `param` ps (scheduled)
  kClockDrift,     ///< sim::PtpClock: set drift to `param` ppb (scheduled)
  kCount,
};

[[nodiscard]] const char* to_string(FaultKind kind);
[[nodiscard]] std::optional<FaultKind> kind_from_string(std::string_view name);

/// One declarative fault. `site` selects probe sites by prefix: empty
/// matches every site probing `kind`; "wire.l1" matches "wire.l1.loss" and
/// "wire.l1.corrupt". Probability is per probe; once triggered, the fault
/// fires for `burst` consecutive probes. The rule is live inside
/// [window_start_ps, window_end_ps). `param` is the kind-specific magnitude
/// (flap down-time ps, stall ps, clock step ps, drift ppb).
struct FaultRule {
  static constexpr sim::SimTime kNoEnd = UINT64_MAX;

  FaultKind kind = FaultKind::kFrameLoss;
  std::string site;
  double probability = 0.0;
  std::uint32_t burst = 1;
  sim::SimTime window_start_ps = 0;
  sim::SimTime window_end_ps = kNoEnd;
  double param = 0.0;

  [[nodiscard]] bool matches(FaultKind kind_, std::string_view site_) const {
    return kind == kind_ && (site.empty() || site_.substr(0, site.size()) == site);
  }
};

/// A seed plus a list of rules. Parsed from the mini-language used by the
/// examples' `--faults` flag:
///
///   spec  := item (';' item)*
///   item  := 'seed=' N | rule
///   rule  := kind ['@' site] ':' key '=' value (',' key '=' value)*
///   kind  := loss|corrupt|reorder|dup|flap|rx_overflow|alloc_fail|stall|
///            clock_step|clock_drift
///   key   := p (probability) | burst | from (ps) | to (ps) | param
///
/// Example: "seed=42;loss@wire.l1:p=0.001,burst=2;flap@wire.l1:p=1e-6,param=5e9"
struct FaultSpec {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  [[nodiscard]] bool empty() const { return rules.empty(); }

  /// Throws std::invalid_argument on malformed input.
  static FaultSpec parse(std::string_view text);
};

class FaultPlane;

namespace detail {

/// Per-site state: the matched rules, the site's private RNG stream, and
/// fire accounting. Addresses are stable (FaultPlane stores sites in a
/// deque); FaultPoints alias them. probe() is not thread-safe — sim sites
/// run on the single event-loop thread, mempool sites probe under the
/// pool's lock.
struct FaultSite {
  struct ArmedRule {
    FaultRule rule;
    std::uint32_t burst_left = 0;
  };

  /// Returns the rule that fires at this probe, or nullptr.
  const FaultRule* probe(sim::SimTime now_ps);
  void record_fire();

  FaultPlane* plane = nullptr;
  std::string name;
  FaultKind kind = FaultKind::kFrameLoss;
  std::mt19937_64 rng;
  std::vector<ArmedRule> armed;
  std::uint64_t probes = 0;
  std::uint64_t fires = 0;
  telemetry::CounterHandle tm_fires;
};

}  // namespace detail

/// Handle probed by an instrumented component at one fault site. Default
/// construction yields a disabled point: `fire()` is one null check.
class FaultPoint {
 public:
  FaultPoint() = default;

  /// Returns the fired rule (for its `param`) or nullptr. `now_ps` gates
  /// the rules' time windows; callers without a simulation clock pass 0.
  const FaultRule* fire(sim::SimTime now_ps = 0) {
    return site_ == nullptr ? nullptr : site_->probe(now_ps);
  }

  /// True if any rule is armed at this site (disabled points never fire).
  [[nodiscard]] bool installed() const { return site_ != nullptr; }
  [[nodiscard]] std::uint64_t fires() const { return site_ == nullptr ? 0 : site_->fires; }

 private:
  friend class FaultPlane;
  explicit FaultPoint(detail::FaultSite* site) : site_(site) {}
  detail::FaultSite* site_ = nullptr;
};

/// Owner of all fault state for one run. Components receive FaultPoints via
/// their `install_faults(plane, site)` methods; scheduled faults (clock
/// step/drift) are armed explicitly. The plane must outlive every component
/// holding one of its points.
class FaultPlane {
 public:
  /// `events` may be null for fast-path (wall-clock) use; scheduled faults
  /// (link flap recovery, clock faults) then cannot be armed.
  explicit FaultPlane(FaultSpec spec, sim::EventQueue* events = nullptr);

  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  /// Returns a probe handle for `kind` at `site`. If no rule of the spec
  /// matches, the handle is disabled (null site — zero per-probe cost).
  FaultPoint point(FaultKind kind, const std::string& site);

  /// Schedules the spec's clock_step / clock_drift rules matching `site`
  /// against `clock`: each fires once at its window start (drift restores
  /// at the window end if one is set). Requires an event queue.
  void arm_clock_faults(sim::PtpClock& clock, const std::string& site);

  /// Mirrors per-site fire counts into `<prefix>.<kind>.<site>` counters
  /// plus `<prefix>.total` of `tree`. Sites created later are bound on
  /// creation.
  void bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix = "fault");
  /// Convenience overload: binds into the registry's default tree (shard 0).
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix = "fault");

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] sim::EventQueue* events() const { return events_; }
  [[nodiscard]] sim::SimTime now_ps() const;
  /// Sum of fires across all sites (including scheduled clock faults).
  [[nodiscard]] std::uint64_t total_fires() const;
  /// Fires of the one site named exactly `site` (0 if absent).
  [[nodiscard]] std::uint64_t fires_at(std::string_view site) const;

  // --- probe-site registry & validation -------------------------------------

  /// One (kind, site) pair a component requested via point() /
  /// arm_clock_faults() — recorded even when no rule matched and the
  /// returned point is disabled. This is what spec validation checks rule
  /// site names against: the registry of probes that *could* fire.
  struct RequestedSite {
    FaultKind kind = FaultKind::kFrameLoss;
    std::string name;
  };
  [[nodiscard]] const std::vector<RequestedSite>& requested_sites() const { return requested_; }

  /// Rules of the spec that match no requested probe site. A typo'd site
  /// ("loss@wire.l9" on a two-link testbed) lands here: the rule can never
  /// fire, silently. Call after every component has installed its points;
  /// testbed::Testbed does this on its first run_until.
  [[nodiscard]] std::vector<const FaultRule*> unmatched_rules() const;

  // --- fire observation (flight recorder) -----------------------------------

  /// Invoked on every fire with (site name, kind, virtual time). Observation
  /// only — the hook must not probe fault points or mutate the plane. One
  /// null check per fire when unset.
  using FireHook = std::function<void(const std::string& site, FaultKind kind,
                                      sim::SimTime now_ps)>;
  void set_fire_hook(FireHook hook) { fire_hook_ = std::move(hook); }

 private:
  friend struct detail::FaultSite;

  detail::FaultSite* make_site(FaultKind kind, const std::string& site);
  void bind_site(detail::FaultSite& site);

  FaultSpec spec_;
  sim::EventQueue* events_;
  std::deque<detail::FaultSite> sites_;  // deque: stable addresses for points
  std::vector<RequestedSite> requested_;
  FireHook fire_hook_;
  telemetry::MetricTree* tree_ = nullptr;
  std::string prefix_;
  telemetry::CounterHandle tm_total_;
};

}  // namespace moongen::fault
