#include "fault/fault.hpp"

#include <cstdlib>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "sim/ptp_clock.hpp"
#include "telemetry/registry.hpp"

namespace moongen::fault {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kFrameLoss, "loss"},
    {FaultKind::kFrameCorrupt, "corrupt"},
    {FaultKind::kFrameReorder, "reorder"},
    {FaultKind::kFrameDuplicate, "dup"},
    {FaultKind::kLinkFlap, "flap"},
    {FaultKind::kRxOverflow, "rx_overflow"},
    {FaultKind::kAllocFail, "alloc_fail"},
    {FaultKind::kStall, "stall"},
    {FaultKind::kClockStep, "clock_step"},
    {FaultKind::kClockDrift, "clock_drift"},
};

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double parse_double(std::string_view v, std::string_view what) {
  // std::from_chars<double> is not universally available; strtod needs a
  // terminated buffer.
  const std::string s(v);
  char* end = nullptr;
  const double d = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || s.empty())
    throw std::invalid_argument("FaultSpec: bad number for " + std::string(what) + ": " + s);
  return d;
}

}  // namespace

const char* to_string(FaultKind kind) {
  for (const auto& [k, name] : kKindNames)
    if (k == kind) return name;
  return "?";
}

std::optional<FaultKind> kind_from_string(std::string_view name) {
  for (const auto& [k, n] : kKindNames)
    if (name == n) return k;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// FaultSpec::parse
// ---------------------------------------------------------------------------

FaultSpec FaultSpec::parse(std::string_view text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t semi = text.find(';', pos);
    std::string_view item =
        text.substr(pos, semi == std::string_view::npos ? std::string_view::npos : semi - pos);
    pos = semi == std::string_view::npos ? text.size() + 1 : semi + 1;
    if (item.empty()) continue;

    if (item.substr(0, 5) == "seed=") {
      spec.seed = static_cast<std::uint64_t>(parse_double(item.substr(5), "seed"));
      continue;
    }

    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos)
      throw std::invalid_argument("FaultSpec: rule without ':': " + std::string(item));
    std::string_view head = item.substr(0, colon);
    FaultRule rule;
    const std::size_t at = head.find('@');
    if (at != std::string_view::npos) {
      rule.site = std::string(head.substr(at + 1));
      head = head.substr(0, at);
    }
    const auto kind = kind_from_string(head);
    if (!kind.has_value())
      throw std::invalid_argument("FaultSpec: unknown fault kind: " + std::string(head));
    rule.kind = *kind;

    std::string_view body = item.substr(colon + 1);
    std::size_t kpos = 0;
    while (kpos <= body.size()) {
      const std::size_t comma = body.find(',', kpos);
      std::string_view kv = body.substr(
          kpos, comma == std::string_view::npos ? std::string_view::npos : comma - kpos);
      kpos = comma == std::string_view::npos ? body.size() + 1 : comma + 1;
      if (kv.empty()) continue;
      const std::size_t eq = kv.find('=');
      if (eq == std::string_view::npos)
        throw std::invalid_argument("FaultSpec: key without '=': " + std::string(kv));
      const std::string_view key = kv.substr(0, eq);
      const std::string_view val = kv.substr(eq + 1);
      if (key == "p") {
        rule.probability = parse_double(val, key);
      } else if (key == "burst") {
        rule.burst = static_cast<std::uint32_t>(parse_double(val, key));
        if (rule.burst == 0) rule.burst = 1;
      } else if (key == "from") {
        rule.window_start_ps = static_cast<sim::SimTime>(parse_double(val, key));
      } else if (key == "to") {
        rule.window_end_ps = static_cast<sim::SimTime>(parse_double(val, key));
      } else if (key == "param") {
        rule.param = parse_double(val, key);
      } else {
        throw std::invalid_argument("FaultSpec: unknown key: " + std::string(key));
      }
    }
    spec.rules.push_back(std::move(rule));
  }
  return spec;
}

// ---------------------------------------------------------------------------
// FaultSite
// ---------------------------------------------------------------------------

namespace detail {

void FaultSite::record_fire() {
  ++fires;
  tm_fires.add(1);
  if (plane != nullptr) plane->tm_total_.add(1);
  if (plane != nullptr && plane->fire_hook_) plane->fire_hook_(name, kind, plane->now_ps());
}

const FaultRule* FaultSite::probe(sim::SimTime now_ps) {
  ++probes;
  // A running burst fires unconditionally (even across a window edge: the
  // burst models a correlated error event already in progress).
  for (auto& ar : armed) {
    if (ar.burst_left > 0) {
      --ar.burst_left;
      record_fire();
      return &ar.rule;
    }
  }
  for (auto& ar : armed) {
    if (ar.rule.probability <= 0.0) continue;
    if (now_ps < ar.rule.window_start_ps || now_ps >= ar.rule.window_end_ps) continue;
    // One draw per live rule per probe: the site's stream is a pure
    // function of (spec seed, site name, probe index) — reproducible and
    // independent of other sites.
    const double u =
        static_cast<double>(rng() >> 11) * 0x1.0p-53;  // uniform [0,1), 53-bit
    if (u < ar.rule.probability) {
      ar.burst_left = ar.rule.burst - 1;
      record_fire();
      return &ar.rule;
    }
  }
  return nullptr;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// FaultPlane
// ---------------------------------------------------------------------------

FaultPlane::FaultPlane(FaultSpec spec, sim::EventQueue* events)
    : spec_(std::move(spec)), events_(events) {}

sim::SimTime FaultPlane::now_ps() const { return events_ != nullptr ? events_->now() : 0; }

detail::FaultSite* FaultPlane::make_site(FaultKind kind, const std::string& site) {
  auto& s = sites_.emplace_back();
  s.plane = this;
  s.name = site;
  s.kind = kind;
  s.rng.seed(splitmix64(spec_.seed ^ fnv1a(site) ^
                        (static_cast<std::uint64_t>(kind) + 1) * 0x9e3779b97f4a7c15ull));
  if (tree_ != nullptr) bind_site(s);
  return &s;
}

FaultPoint FaultPlane::point(FaultKind kind, const std::string& site) {
  requested_.push_back(RequestedSite{kind, site});
  std::vector<detail::FaultSite::ArmedRule> armed;
  for (const auto& rule : spec_.rules) {
    if (rule.matches(kind, site)) armed.push_back({rule, 0});
  }
  if (armed.empty()) return FaultPoint{};  // disabled: zero per-probe cost
  detail::FaultSite* s = make_site(kind, site);
  s->armed = std::move(armed);
  return FaultPoint{s};
}

void FaultPlane::arm_clock_faults(sim::PtpClock& clock, const std::string& site) {
  if (events_ == nullptr)
    throw std::logic_error("FaultPlane::arm_clock_faults needs an event queue");
  requested_.push_back(RequestedSite{FaultKind::kClockStep, site});
  requested_.push_back(RequestedSite{FaultKind::kClockDrift, site});
  for (const auto& rule : spec_.rules) {
    if (rule.kind != FaultKind::kClockStep && rule.kind != FaultKind::kClockDrift) continue;
    if (!rule.matches(rule.kind, site)) continue;
    detail::FaultSite* s = make_site(rule.kind, site);
    sim::PtpClock* target = &clock;
    if (rule.kind == FaultKind::kClockStep) {
      events_->schedule_at(rule.window_start_ps, [s, target, step = rule.param] {
        target->adjust(static_cast<std::int64_t>(step));
        s->record_fire();
      });
    } else {
      const std::int64_t prev_ppb = clock.config().drift_ppb;
      events_->schedule_at(rule.window_start_ps, [s, target, ppb = rule.param] {
        target->set_drift_ppb(static_cast<std::int64_t>(ppb), s->plane->now_ps());
        s->record_fire();
      });
      if (rule.window_end_ps != FaultRule::kNoEnd) {
        events_->schedule_at(rule.window_end_ps, [s, target, prev_ppb] {
          target->set_drift_ppb(prev_ppb, s->plane->now_ps());
        });
      }
    }
  }
}

void FaultPlane::bind_site(detail::FaultSite& site) {
  site.tm_fires = tree_->counter(prefix_ + "." + to_string(site.kind) + "." + site.name);
  site.tm_fires.add(site.fires);  // late binding: seed with history
}

void FaultPlane::bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix) {
  if (tree_ != nullptr) return;  // already bound
  tree_ = &tree;
  prefix_ = prefix;
  tm_total_ = tree.counter(prefix + ".total");
  tm_total_.add(total_fires());
  for (auto& s : sites_) bind_site(s);
}

void FaultPlane::bind_telemetry(telemetry::MetricRegistry& registry,
                                const std::string& prefix) {
  bind_telemetry(registry.shard(0), prefix);
}

std::uint64_t FaultPlane::total_fires() const {
  std::uint64_t n = 0;
  for (const auto& s : sites_) n += s.fires;
  return n;
}

std::vector<const FaultRule*> FaultPlane::unmatched_rules() const {
  std::vector<const FaultRule*> unmatched;
  for (const auto& rule : spec_.rules) {
    bool hit = false;
    for (const auto& req : requested_) {
      if (rule.matches(req.kind, req.name)) {
        hit = true;
        break;
      }
    }
    if (!hit) unmatched.push_back(&rule);
  }
  return unmatched;
}

std::uint64_t FaultPlane::fires_at(std::string_view site) const {
  for (const auto& s : sites_) {
    if (s.name == site) return s.fires;
  }
  return 0;
}

}  // namespace moongen::fault
