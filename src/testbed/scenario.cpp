#include "testbed/scenario.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/task.hpp"

namespace moongen::testbed {

namespace {

// splitmix64 finalizer: derives per-entity seeds from (base seed, entity
// id) so unrelated entities never share an RNG stream by accident.
std::uint64_t mix_seed(std::uint64_t base, std::uint64_t salt) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Minimal union-find over device indices (a scenario has a handful of
// devices; path compression alone is plenty).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

// --- fluent setters ---------------------------------------------------------

Scenario& Scenario::seed(std::uint64_t s) {
  seed_ = s;
  return *this;
}

Scenario& Scenario::shards(int n) {
  shards_ = std::max(1, n);
  return *this;
}

Scenario& Scenario::faults(fault::FaultSpec spec) {
  fault_spec_ = std::move(spec);
  return *this;
}

Scenario& Scenario::faults(std::string_view text) {
  return faults(fault::FaultSpec::parse(text));
}

Scenario& Scenario::telemetry(bool enabled) {
  telemetry_enabled_ = enabled;
  return *this;
}

Scenario& Scenario::telemetry(telemetry::MetricRegistry& external) {
  telemetry_enabled_ = true;
  external_registry_ = &external;
  return *this;
}

Scenario& Scenario::rtt_groups(std::uint32_t n) {
  if (n == 0) throw std::invalid_argument("Scenario::rtt_groups: need at least one group");
  rtt_groups_ = n;
  return *this;
}

Scenario& Scenario::rtt_window_ns(std::uint64_t ns) {
  if (ns == 0) throw std::invalid_argument("Scenario::rtt_window_ns: zero window");
  rtt_window_ps_ = ns * 1'000;
  return *this;
}

Scenario& Scenario::stream_telemetry(std::string path, std::uint64_t period_ns,
                                     std::string format) {
  if (path.empty()) throw std::invalid_argument("Scenario::stream_telemetry: empty path");
  if (period_ns == 0) throw std::invalid_argument("Scenario::stream_telemetry: zero period");
  telemetry::TelemetryStreamConfig cfg;
  cfg.path = std::move(path);
  cfg.period_ps = period_ns * 1'000;
  cfg.format = std::move(format);
  stream_ = std::move(cfg);
  return *this;
}

Scenario::DeviceDecl& Scenario::cur_device() {
  if (cursor_ != Cursor::kDevice || devices_.empty())
    throw std::logic_error("Scenario: device modifier without a preceding device()");
  return devices_.back();
}

Scenario::LinkDecl& Scenario::cur_link() {
  if (cursor_ != Cursor::kLink || links_.empty())
    throw std::logic_error("Scenario: link modifier without a preceding link()");
  return links_.back();
}

Scenario& Scenario::device(int id, nic::ChipSpec chip) {
  if (id < 0) throw std::invalid_argument("Scenario::device: negative id");
  for (const auto& d : devices_) {
    if (d.id == id)
      throw std::invalid_argument("Scenario::device: duplicate id " + std::to_string(id));
  }
  DeviceDecl decl;
  decl.id = id;
  decl.chip = std::move(chip);
  decl.name = "dev" + std::to_string(id);
  devices_.push_back(std::move(decl));
  cursor_ = Cursor::kDevice;
  return *this;
}

Scenario& Scenario::name(std::string device_name) {
  cur_device().name = std::move(device_name);
  return *this;
}

Scenario& Scenario::link_mbit(std::uint64_t mbit) {
  cur_device().link_mbit = mbit;
  return *this;
}

Scenario& Scenario::queues(int n) {
  if (n <= 0) throw std::invalid_argument("Scenario::queues: need at least one queue");
  cur_device().queues = n;
  return *this;
}

Scenario& Scenario::rx_store(bool store) {
  cur_device().rx_store = store;
  return *this;
}

Scenario& Scenario::rtt_record(bool record) {
  cur_device().rtt_record = record;
  return *this;
}

Scenario& Scenario::pin_shard(int shard) {
  if (shard < 0) throw std::invalid_argument("Scenario::pin_shard: negative shard");
  cur_device().pin = shard;
  return *this;
}

Scenario& Scenario::link(int from, int to) {
  if (from == to) throw std::invalid_argument("Scenario::link: from == to");
  LinkDecl decl;
  decl.from = from;
  decl.to = to;
  links_.push_back(decl);
  cursor_ = Cursor::kLink;
  return *this;
}

Scenario& Scenario::cable(wire::CableSpec c) {
  cur_link().cable = c;
  return *this;
}

Scenario& Scenario::latency_ns(double ns) {
  if (ns < 0) throw std::invalid_argument("Scenario::latency_ns: negative latency");
  cur_link().cable =
      wire::CableSpec{0.0, 0.72, static_cast<sim::SimTime>(ns * 1e3), wire::PhyJitter::kNone};
  return *this;
}

Scenario& Scenario::duplex() {
  cur_link().duplex = true;
  return *this;
}

Scenario& Scenario::with_seed(std::uint64_t s) {
  switch (cursor_) {
    case Cursor::kDevice:
      cur_device().seed = s;
      return *this;
    case Cursor::kLink:
      cur_link().seed = s;
      return *this;
    case Cursor::kNone:
      break;
  }
  throw std::logic_error("Scenario::with_seed: no preceding device() or link()");
}

Scenario& Scenario::couple(int a, int b) {
  if (a == b) throw std::invalid_argument("Scenario::couple: a == b");
  couples_.push_back(CoupleDecl{a, b});
  cursor_ = Cursor::kNone;
  return *this;
}

Scenario& Scenario::forwarder(int in_device, int out_device, dut::ForwarderConfig cfg) {
  if (in_device == out_device)
    throw std::invalid_argument("Scenario::forwarder: in == out");
  forwarders_.push_back(ForwarderDecl{in_device, out_device, cfg});
  cursor_ = Cursor::kNone;
  return *this;
}

Scenario& Scenario::vswitch(int in_device, std::vector<int> out_devices,
                            dut::VSwitchConfig cfg) {
  if (out_devices.empty())
    throw std::invalid_argument("Scenario::vswitch: need at least one vport");
  for (const int out : out_devices) {
    if (out == in_device) throw std::invalid_argument("Scenario::vswitch: in == out");
  }
  vswitches_.push_back(VSwitchDecl{in_device, std::move(out_devices), std::move(cfg)});
  cursor_ = Cursor::kNone;
  return *this;
}

Scenario& Scenario::fast_device(int id, int rx_queues, int tx_queues) {
  fast_devices_.push_back(FastDecl{id, rx_queues, tx_queues});
  cursor_ = Cursor::kNone;
  return *this;
}

Scenario& Scenario::fast_connect(int from, int to) {
  fast_connects_.push_back(FastConnectDecl{from, to});
  cursor_ = Cursor::kNone;
  return *this;
}

std::size_t Scenario::device_index(int id, const char* what) const {
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (devices_[i].id == id) return i;
  }
  throw std::invalid_argument(std::string("Scenario: ") + what + " references undeclared device " +
                              std::to_string(id));
}

// --- build ------------------------------------------------------------------

std::unique_ptr<Testbed> Scenario::build() {
  // 1. Partition devices into coupling groups: devices joined by couple()
  // or forwarder() must share one event engine.
  UnionFind uf(devices_.size());
  for (const auto& c : couples_)
    uf.merge(device_index(c.a, "couple"), device_index(c.b, "couple"));
  for (const auto& f : forwarders_)
    uf.merge(device_index(f.in, "forwarder"), device_index(f.out, "forwarder"));
  for (const auto& v : vswitches_) {
    for (const int out : v.outs)
      uf.merge(device_index(v.in, "vswitch"), device_index(out, "vswitch"));
  }
  for (const auto& l : links_) {
    (void)device_index(l.from, "link");
    (void)device_index(l.to, "link");
  }

  // Groups ordered by their smallest device id: shard assignment must not
  // depend on declaration order subtleties.
  std::map<std::size_t, std::vector<std::size_t>> groups;  // root -> members
  for (std::size_t i = 0; i < devices_.size(); ++i) groups[uf.find(i)].push_back(i);
  std::vector<std::vector<std::size_t>> ordered;
  ordered.reserve(groups.size());
  for (auto& [root, members] : groups) ordered.push_back(std::move(members));
  std::sort(ordered.begin(), ordered.end(), [this](const auto& a, const auto& b) {
    const auto min_id = [this](const std::vector<std::size_t>& g) {
      int m = devices_[g.front()].id;
      for (const std::size_t i : g) m = std::min(m, devices_[i].id);
      return m;
    };
    return min_id(a) < min_id(b);
  });

  // 2. Effective shard count: never more shards than independent groups
  // (and at least one engine even for a pure fast-path testbed).
  const std::size_t effective =
      std::max<std::size_t>(1, std::min<std::size_t>(static_cast<std::size_t>(shards_),
                                                     std::max<std::size_t>(1, ordered.size())));

  // 3. Assign groups to shards: explicit pins first, the rest round-robin.
  std::vector<std::size_t> shard_of(devices_.size(), 0);
  std::size_t next_shard = 0;
  for (const auto& group : ordered) {
    int pin = -1;
    for (const std::size_t i : group) {
      const int p = devices_[i].pin;
      if (p < 0) continue;
      if (pin >= 0 && pin != p)
        throw std::invalid_argument("Scenario: conflicting pin_shard() within one coupled group");
      pin = p;
    }
    std::size_t shard;
    if (pin >= 0) {
      if (static_cast<std::size_t>(pin) >= effective)
        throw std::invalid_argument("Scenario: pin_shard(" + std::to_string(pin) +
                                    ") exceeds effective shard count " +
                                    std::to_string(effective));
      shard = static_cast<std::size_t>(pin);
    } else {
      shard = next_shard++ % effective;
    }
    for (const std::size_t i : group) shard_of[i] = shard;
  }

  auto tb = std::unique_ptr<Testbed>(new Testbed());

  // 4. Runtime + executor. Shard workers run as core::TaskSet tasks, so
  // they get the same core pinning as MoonGen slave tasks.
  tb->runtime_ = std::make_unique<sim::ParallelRuntime>(effective);
  if (effective > 1) {
    tb->runtime_->set_executor([](std::vector<sim::ParallelRuntime::Work>& work) {
      core::TaskSet tasks;
      for (std::size_t i = 0; i < work.size(); ++i)
        tasks.launch("shard" + std::to_string(i), work[i]);
      tasks.wait();
    });
  }

  // 5. Registry and fault planes. One plane per shard: a site's fault
  // events must run on the engine of the shard that owns the component.
  if (external_registry_ != nullptr) {
    tb->registry_ = external_registry_;
  } else {
    tb->owned_registry_ = std::make_unique<telemetry::MetricRegistry>();
    tb->registry_ = tb->owned_registry_.get();
  }
  if (!fault_spec_.empty()) {
    for (std::size_t k = 0; k < effective; ++k)
      tb->planes_.push_back(
          std::make_unique<fault::FaultPlane>(fault_spec_, &tb->runtime_->shard(k)));
  }

  // 6. Ports, in id order (construction order is part of the determinism
  // contract: it fixes event sequence numbers at time zero).
  std::vector<std::size_t> by_id(devices_.size());
  for (std::size_t i = 0; i < by_id.size(); ++i) by_id[i] = i;
  std::sort(by_id.begin(), by_id.end(),
            [this](std::size_t a, std::size_t b) { return devices_[a].id < devices_[b].id; });
  for (const std::size_t i : by_id) {
    const DeviceDecl& d = devices_[i];
    nic::ChipSpec spec = d.chip;
    if (d.queues > 0) spec.num_queues = d.queues;
    const std::uint64_t port_seed =
        d.seed ? *d.seed : mix_seed(seed_, static_cast<std::uint64_t>(d.id));
    Testbed::DeviceEntry entry;
    entry.name = d.name;
    entry.shard = shard_of[i];
    entry.port = std::make_unique<nic::Port>(tb->runtime_->shard(shard_of[i]), std::move(spec),
                                             d.link_mbit, port_seed);
    if (!d.rx_store) entry.port->rx_queue(0).set_store(false);
    tb->devices_.emplace(d.id, std::move(entry));
  }

  // 7. Links, in declaration order (duplex expands in place). A link whose
  // endpoints live on different shards gets a lock-free frame channel and
  // registers its cable's minimum latency as the runtime's lookahead.
  std::vector<LinkDecl> expanded;
  for (const LinkDecl& l : links_) {
    expanded.push_back(l);
    if (l.duplex) {
      LinkDecl rev = l;
      std::swap(rev.from, rev.to);
      rev.duplex = false;
      if (l.seed) rev.seed = *l.seed + 1;
      expanded.push_back(rev);
    }
  }
  for (std::size_t li = 0; li < expanded.size(); ++li) {
    const LinkDecl& l = expanded[li];
    const std::size_t from_shard = shard_of[device_index(l.from, "link")];
    const std::size_t to_shard = shard_of[device_index(l.to, "link")];
    const std::uint64_t link_seed = l.seed ? *l.seed : mix_seed(seed_ ^ 0x77697265ull, li);
    Testbed::LinkEntry entry;
    entry.from = l.from;
    entry.to = l.to;
    entry.link = std::make_unique<wire::Link>(tb->port(l.from), tb->port(l.to), l.cable,
                                              link_seed);
    if (from_shard != to_shard) {
      const sim::SimTime lookahead = entry.link->lookahead_ps();
      if (lookahead == 0)
        throw std::invalid_argument(
            "Scenario: cross-shard link " + std::to_string(l.from) + " -> " +
            std::to_string(l.to) +
            " has no usable lookahead (cable latency does not exceed one max frame "
            "time); give it a longer cable()/latency_ns() or couple() its endpoints "
            "onto one shard");
      tb->channels_.emplace_back();
      wire::Link* raw = entry.link.get();
      raw->set_remote(&tb->channels_.back());
      tb->runtime_->add_channel(
          from_shard, to_shard, lookahead, [raw] { raw->drain_remote_epoch(); },
          [raw] { raw->flush_remote_epoch(); });
    }
    tb->links_.push_back(std::move(entry));
  }

  // 8. Forwarders and vswitches, in declaration order.
  for (const ForwarderDecl& f : forwarders_) {
    const std::size_t shard = shard_of[device_index(f.in, "forwarder")];
    tb->forwarders_.push_back(std::make_unique<dut::Forwarder>(
        tb->runtime_->shard(shard), tb->port(f.in), 0, tb->port(f.out), 0, f.cfg));
  }
  for (const VSwitchDecl& v : vswitches_) {
    const std::size_t shard = shard_of[device_index(v.in, "vswitch")];
    std::vector<nic::Port*> vports;
    vports.reserve(v.outs.size());
    for (const int out : v.outs) vports.push_back(&tb->port(out));
    tb->vswitches_.push_back(std::make_unique<dut::VSwitch>(
        tb->runtime_->shard(shard), tb->port(v.in), 0, std::move(vports), v.cfg));
  }

  // 9. Fault installation, with the site names the hand-wired examples
  // used (wire.l1 is the first declared link; sites materialize only where
  // a rule matches, so blanket installation costs nothing).
  if (!tb->planes_.empty()) {
    for (std::size_t li = 0; li < expanded.size(); ++li) {
      const std::size_t shard = shard_of[device_index(expanded[li].from, "link")];
      tb->links_[li].link->install_faults(*tb->planes_[shard],
                                          "wire.l" + std::to_string(li + 1));
    }
    for (auto& [id, entry] : tb->devices_) {
      fault::FaultPlane& plane = *tb->planes_[entry.shard];
      entry.port->install_faults(plane, "nic." + entry.name);
      plane.arm_clock_faults(entry.port->ptp_clock(), "clock." + entry.name);
    }
    for (std::size_t fi = 0; fi < forwarders_.size(); ++fi) {
      const std::size_t shard = shard_of[device_index(forwarders_[fi].in, "forwarder")];
      const std::string site = fi == 0 ? "dut.fwd" : "dut.fwd" + std::to_string(fi + 1);
      tb->forwarders_[fi]->install_faults(*tb->planes_[shard], site);
    }
    for (std::size_t vi = 0; vi < vswitches_.size(); ++vi) {
      const std::size_t shard = shard_of[device_index(vswitches_[vi].in, "vswitch")];
      const std::string site = vi == 0 ? "vswitch" : "vswitch" + std::to_string(vi + 1);
      tb->vswitches_[vi]->install_faults(*tb->planes_[shard], site);
    }
  }

  // 10. Telemetry: same metric names as the hand-wired examples on one
  // shard; engines gain a .shard<k> suffix when there are several. Every
  // component resolves its handles from the tree of the shard that owns it
  // (the per-shard metric API), so hot-path bumps never cross shards;
  // MetricRegistry::snapshot merges the trees at quiesced instants.
  if (telemetry_enabled_) {
    for (std::size_t k = 0; k < tb->planes_.size(); ++k)
      tb->planes_[k]->bind_telemetry(tb->registry_->shard(k));
    for (std::size_t k = 0; k < effective; ++k) {
      const std::string prefix =
          effective == 1 ? "engine" : "engine.shard" + std::to_string(k);
      tb->runtime_->shard(k).bind_telemetry(tb->registry_->shard(k), prefix);
    }
    for (auto& [id, entry] : tb->devices_)
      entry.port->bind_telemetry(tb->registry_->shard(entry.shard), "port." + entry.name);
    for (std::size_t vi = 0; vi < vswitches_.size(); ++vi) {
      const std::size_t shard = shard_of[device_index(vswitches_[vi].in, "vswitch")];
      const std::string stem = vi == 0 ? "vswitch" : "vswitch" + std::to_string(vi + 1);
      tb->vswitches_[vi]->bind_telemetry(tb->registry_->shard(shard), stem);
    }

    // 10b. The always-on RTT plane: one single-writer shard slice per
    // simulation shard; every port stamps departures and accounts
    // receptions/drops, links account wire losses on the *source* port's
    // shard (on_frame runs there). Windows close via a runtime window
    // hook — before any same-instant globals, so sampling ticks and the
    // stream see freshly closed windows.
    telemetry::RttPlaneConfig rtt_cfg;
    rtt_cfg.flow_groups = rtt_groups_;
    rtt_cfg.window_ps = rtt_window_ps_;
    tb->rtt_plane_ = std::make_unique<telemetry::RttPlane>(rtt_cfg, effective);
    telemetry::RttPlane* plane = tb->rtt_plane_.get();
    for (auto& [id, entry] : tb->devices_) {
      const std::size_t di = device_index(id, "rtt");
      entry.port->attach_rtt(&plane->shard(entry.shard), devices_[di].rtt_record);
    }
    for (std::size_t li = 0; li < expanded.size(); ++li) {
      const std::size_t from_shard = shard_of[device_index(expanded[li].from, "link")];
      tb->links_[li].link->attach_rtt(&plane->shard(from_shard));
    }
    for (std::size_t vi = 0; vi < vswitches_.size(); ++vi) {
      const std::size_t shard = shard_of[device_index(vswitches_[vi].in, "vswitch")];
      tb->vswitches_[vi]->attach_rtt(&plane->shard(shard));
    }
    plane->bind_telemetry(tb->registry_->shard(0));
    tb->runtime_->add_window_hook(rtt_window_ps_,
                                  [plane](sim::SimTime t) { plane->close_window(t); });

    // 10c. Streaming exporter: one snapshot (plus freshly closed RTT
    // windows) per period, written to a file at quiesced instants —
    // stdout stays byte-identical with streaming on or off.
    if (stream_.has_value()) {
      tb->stream_ = std::make_unique<telemetry::TelemetryStream>(*tb->registry_, *stream_);
      tb->stream_->attach_rtt(plane);
      telemetry::TelemetryStream* stream = tb->stream_.get();
      auto* tb_raw = tb.get();
      tb->runtime_->add_window_hook(stream_->period_ps, [stream, tb_raw](sim::SimTime t) {
        // Engines batch their counters; flush so the streamed snapshot is
        // exact at this quiesced instant.
        tb_raw->publish_engine_telemetry();
        stream->tick(t);
      });
    }
  }

  // 11. Fast-path devices.
  for (const FastDecl& f : fast_devices_) tb->fast_devices_.config(f.id, f.rx, f.tx);
  for (const FastConnectDecl& c : fast_connects_) {
    core::Device* from = tb->fast_devices_.find(c.from);
    core::Device* to = tb->fast_devices_.find(c.to);
    if (from == nullptr || to == nullptr)
      throw std::invalid_argument("Scenario::fast_connect references undeclared fast device");
    from->connect_to(*to);
  }

  return tb;
}

}  // namespace moongen::testbed
