// Scenario: the declarative builder behind every example testbed.
//
// Replaces the ~60 lines of hand-wiring (event queue, ports, links,
// forwarder, fault plane, telemetry binding) previously copy-pasted across
// the examples with one fluent declaration:
//
//   auto tb = testbed::Scenario()
//                 .seed(1)
//                 .shards(n)                      // from --shards
//                 .faults(spec)                   // from --faults
//                 .device(0, nic::intel_x540()).name("gen_tx").with_seed(1)
//                 .device(1, nic::intel_x540()).name("dut_in").with_seed(2)
//                 .device(2, nic::intel_x540()).name("dut_out").with_seed(3)
//                 .device(3, nic::intel_x540()).name("sink").with_seed(4)
//                     .rx_store(false)
//                 .link(0, 1).with_seed(5)        // cat5e 10GBASE-T default
//                 .link(2, 3).with_seed(6)
//                 .forwarder(1, 2)                // couples dut_in/dut_out
//                 .couple(0, 3)                   // timestamper spans these
//                 .build();
//
// build() partitions the devices into shards: couple() and forwarder()
// declare which devices must share an event engine (components that touch
// both ends synchronously); everything else may be split. Cross-shard
// links become lock-free frame channels with conservative lookahead equal
// to the cable's minimum latency (sim::ParallelRuntime), so a cross-shard
// link MUST have positive minimum latency — pin its endpoints together
// with couple() if it cannot.
//
// Modifier calls (name/with_seed/cable/...) apply to the most recently
// declared device or link, in the builder-cursor style of the usage above.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dut/forwarder.hpp"
#include "dut/vswitch.hpp"
#include "fault/fault.hpp"
#include "nic/chip.hpp"
#include "testbed/testbed.hpp"
#include "wire/cable.hpp"

namespace moongen::testbed {

class Scenario {
 public:
  Scenario() = default;

  // --- global knobs --------------------------------------------------------

  /// Base seed: devices and links without an explicit with_seed() derive
  /// theirs from this (mixed with the device id / link index).
  Scenario& seed(std::uint64_t s);
  /// Requested shard count (from --shards). build() caps it at the number
  /// of independent device groups; 1 (the default) is the sequential
  /// engine, byte-identical to pre-parallel behaviour.
  Scenario& shards(int n);
  /// Installs the fault spec on every component (links as wire.l<N>, ports
  /// as nic.<name>, forwarders as dut.fwd[N], clocks as clock.<name>).
  /// Sites are only materialized where a rule matches, so this is
  /// behaviour-identical to the old selective install_faults calls.
  Scenario& faults(fault::FaultSpec spec);
  /// Parses the --faults mini-language; throws std::invalid_argument on a
  /// malformed spec.
  Scenario& faults(std::string_view text);
  /// Disables (or re-enables) telemetry binding; default on. Also gates the
  /// always-on RTT plane.
  Scenario& telemetry(bool enabled);
  /// Binds all components into a caller-owned registry instead of the
  /// testbed-owned one (it must outlive the testbed).
  Scenario& telemetry(telemetry::MetricRegistry& external);
  /// Flow groups of the always-on RTT plane (rounded up to a power of two;
  /// default 1). A frame's `flow` label selects its group modulo this.
  Scenario& rtt_groups(std::uint32_t n);
  /// Window length of the RTT plane's quantile snapshots in nanoseconds of
  /// virtual time (default 100 ms). Windows close automatically during
  /// run_until at every multiple of this period.
  Scenario& rtt_window_ns(std::uint64_t ns);
  /// Streams one registry snapshot per `period_ns` of virtual time to
  /// `path` (format: "json", "csv" or "prometheus"), plus every RTT window
  /// closed in between as a JSON line. stdout is untouched — an
  /// instrumented run prints byte-identically to an uninstrumented one.
  Scenario& stream_telemetry(std::string path, std::uint64_t period_ns,
                             std::string format = "json");

  // --- simulated devices ---------------------------------------------------

  /// Declares a simulated NIC port. Ids must be unique and non-negative.
  Scenario& device(int id, nic::ChipSpec chip);
  /// Names the device: telemetry prefix `port.<name>`, fault sites
  /// `nic.<name>` / `clock.<name>`, and lookup via Testbed::port(name).
  /// Default name: `dev<id>`.
  Scenario& name(std::string device_name);
  /// Link speed in Mbit/s (default 10'000).
  Scenario& link_mbit(std::uint64_t mbit);
  /// Overrides the chip's TX/RX queue count.
  Scenario& queues(int n);
  /// Disables payload storage on RX queue 0 (pure counting sinks).
  Scenario& rx_store(bool store);
  /// Whether this device's RX path folds stamped frames into the RTT
  /// plane's histograms (default on — the plane is always in-path).
  /// Conservation counting (rx_seen / drops) stays on either way; turn
  /// this off for ports whose RX is not an end-to-end measurement point
  /// (e.g. a DuT's ingress, where the frame is still mid-journey).
  Scenario& rtt_record(bool record);
  /// Pins this device's group to a specific shard (0-based, must be below
  /// the effective shard count). Default: groups are assigned round-robin.
  Scenario& pin_shard(int shard);

  // --- links ---------------------------------------------------------------

  /// Declares a one-directional cable from `from`'s MAC to `to`'s RX path.
  Scenario& link(int from, int to);
  /// Cable model for the last link (default: 2 m Cat 5e 10GBASE-T).
  Scenario& cable(wire::CableSpec c);
  /// Fixed, jitter-free latency for the last link (convenience cable).
  Scenario& latency_ns(double ns);
  /// Also creates the reverse link with the same cable (its seed is the
  /// declared seed + 1, or derived from the base seed).
  Scenario& duplex();

  /// Explicit seed for the last declared device or link.
  Scenario& with_seed(std::uint64_t s);

  // --- coupling & DuTs -----------------------------------------------------

  /// Forces two devices onto the same shard (required when a component —
  /// e.g. a Timestamper or a shared PtpClock — touches both without a
  /// link's latency between them).
  Scenario& couple(int a, int b);
  /// Declares an OVS-like forwarder from `in_device` RX 0 to `out_device`
  /// TX 0; implies couple(in_device, out_device).
  Scenario& forwarder(int in_device, int out_device, dut::ForwarderConfig cfg = {});
  /// Declares a multi-tenant virtual switch from `in_device` RX 0 to the
  /// vports `out_devices` (TX 0 each, in the given order — TenantConfig
  /// vport indices refer to this order); implies coupling the ingress with
  /// every vport. Fault sites: `vswitch.drop` / `vswitch.stall` (suffix
  /// `2`, `3`... on the site stem for later vswitches); telemetry under
  /// `vswitch.*` with per-tenant `vswitch.t<k>.*`.
  Scenario& vswitch(int in_device, std::vector<int> out_devices, dut::VSwitchConfig cfg);

  // --- fast-path devices ---------------------------------------------------

  /// Declares a fast-path (wall-clock) core::Device in the testbed's
  /// private DeviceTable.
  Scenario& fast_device(int id, int rx_queues = 1, int tx_queues = 1);
  /// Connects fast-path device `from`'s TX to `to`'s RX queue 0.
  Scenario& fast_connect(int from, int to);

  /// Validates the declaration, partitions devices into shards and
  /// constructs the testbed. Throws std::invalid_argument on undeclared
  /// ids, conflicting pins, or a cross-shard link with zero minimum
  /// latency.
  [[nodiscard]] std::unique_ptr<Testbed> build();

 private:
  enum class Cursor { kNone, kDevice, kLink };

  struct DeviceDecl {
    int id = -1;
    nic::ChipSpec chip;
    std::string name;
    std::uint64_t link_mbit = 10'000;
    int queues = -1;  // -1: chip default
    bool rx_store = true;
    bool rtt_record = true;
    std::optional<std::uint64_t> seed;
    int pin = -1;  // -1: round-robin
  };
  struct LinkDecl {
    int from = -1;
    int to = -1;
    wire::CableSpec cable = wire::cat5e_10gbaset(2.0);
    std::optional<std::uint64_t> seed;
    bool duplex = false;
  };
  struct ForwarderDecl {
    int in = -1;
    int out = -1;
    dut::ForwarderConfig cfg;
  };
  struct VSwitchDecl {
    int in = -1;
    std::vector<int> outs;
    dut::VSwitchConfig cfg;
  };
  struct CoupleDecl {
    int a = -1;
    int b = -1;
  };
  struct FastDecl {
    int id = -1;
    int rx = 1;
    int tx = 1;
  };
  struct FastConnectDecl {
    int from = -1;
    int to = -1;
  };

  DeviceDecl& cur_device();
  LinkDecl& cur_link();
  [[nodiscard]] std::size_t device_index(int id, const char* what) const;

  std::uint64_t seed_ = 1;
  int shards_ = 1;
  fault::FaultSpec fault_spec_;
  bool telemetry_enabled_ = true;
  telemetry::MetricRegistry* external_registry_ = nullptr;
  std::uint32_t rtt_groups_ = 1;
  std::uint64_t rtt_window_ps_ = 100'000'000'000ull;  // 100 ms
  std::optional<telemetry::TelemetryStreamConfig> stream_;

  std::vector<DeviceDecl> devices_;
  std::vector<LinkDecl> links_;
  std::vector<ForwarderDecl> forwarders_;
  std::vector<VSwitchDecl> vswitches_;
  std::vector<CoupleDecl> couples_;
  std::vector<FastDecl> fast_devices_;
  std::vector<FastConnectDecl> fast_connects_;
  Cursor cursor_ = Cursor::kNone;
};

}  // namespace moongen::testbed
