// Testbed: one constructed experiment — ports, links, DuTs, fault planes
// and the (possibly parallel) simulation runtime that drives them.
//
// A Testbed is built by testbed::Scenario (scenario.hpp), which replaces
// the hand-wiring previously duplicated across every example: construct an
// EventQueue, four Ports, two Links, a Forwarder, a FaultPlane, bind
// telemetry, remember the right seeds. The Scenario declares the topology
// once; build() places every device on a simulation shard, bridges
// cross-shard links with lock-free frame channels, and wires fault
// injection and telemetry with the same site/metric names the hand-wired
// examples used — so existing CI greps and JSON consumers keep working.
//
// Determinism contract (DESIGN.md Section 10): for a fixed scenario, seed
// and shard count, every run produces identical outputs; and the paper's
// figure scenarios produce byte-identical telemetry for 1, 2 and 4 shards.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/device.hpp"
#include "core/task.hpp"
#include "dut/forwarder.hpp"
#include "dut/vswitch.hpp"
#include "fault/fault.hpp"
#include "nic/port.hpp"
#include "sim/parallel.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/rtt_plane.hpp"
#include "telemetry/stream.hpp"
#include "wire/link.hpp"

namespace moongen::testbed {

class Scenario;

class Testbed {
 public:
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;
  ~Testbed() = default;

  // --- topology access -----------------------------------------------------

  /// The simulated port declared as `device(id, ...)`.
  [[nodiscard]] nic::Port& port(int id);
  /// Lookup by the name given with `.name("gen_tx")`.
  [[nodiscard]] nic::Port& port(std::string_view name);
  /// The link declared as `link(from, to)` (first match in declaration
  /// order; a duplex link's reverse direction is `link(to, from)`).
  [[nodiscard]] wire::Link& link(int from, int to);
  /// The i-th forwarder in declaration order.
  [[nodiscard]] dut::Forwarder& forwarder(std::size_t index = 0);
  [[nodiscard]] std::size_t forwarder_count() const { return forwarders_.size(); }
  /// The i-th virtual switch in declaration order.
  [[nodiscard]] dut::VSwitch& vswitch(std::size_t index = 0);
  [[nodiscard]] std::size_t vswitch_count() const { return vswitches_.size(); }

  // --- topology enumeration (health checkers walk every link/port) ---------

  /// Number of unidirectional links (a duplex declaration counts as two).
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  /// The i-th link in expanded declaration order.
  [[nodiscard]] wire::Link& link_at(std::size_t index);
  /// Device ids {from, to} of the i-th link.
  [[nodiscard]] std::pair<int, int> link_ends(std::size_t index) const;
  /// All declared device ids, ascending.
  [[nodiscard]] std::vector<int> device_ids() const;

  // --- runtime -------------------------------------------------------------

  /// The event engine of the shard that owns `device_id`. Components that
  /// take an EventQueue& (Timestamper, SimLoadGen patterns, baselines) must
  /// be constructed on the engine of the ports they touch.
  [[nodiscard]] sim::EventQueue& engine(int device_id);
  /// The single engine of a one-shard testbed; throws std::logic_error if
  /// there is more than one shard (use engine(device_id) then).
  [[nodiscard]] sim::EventQueue& engine();
  [[nodiscard]] sim::ParallelRuntime& runtime() { return *runtime_; }
  [[nodiscard]] std::size_t shard_count() const { return runtime_->shard_count(); }
  [[nodiscard]] std::size_t shard_of(int device_id) const;

  /// Runs every shard up to absolute virtual time `t` (see
  /// sim::ParallelRuntime::run_until). The first call validates the fault
  /// spec's site names (see validate_fault_rules).
  void run_until(sim::SimTime t) {
    if (!fault_rules_validated_) validate_fault_rules();
    runtime_->run_until(t);
  }
  /// Runs for `seconds` of virtual time from now.
  void run_for(double seconds);
  [[nodiscard]] sim::SimTime now() const { return runtime_->now(); }

  /// Schedules `fn` at absolute virtual time `t` on the global (cross-
  /// shard) timeline: it runs single-threaded while every shard is
  /// quiesced at `t`, so it may touch any shard's components. This is
  /// where telemetry sampling ticks belong.
  void schedule_global(sim::SimTime t, std::function<void()> fn) {
    runtime_->schedule_global(t, std::move(fn));
  }

  /// Frames that crossed a shard boundary so far (0 on one shard).
  [[nodiscard]] std::uint64_t cross_shard_frames() const;

  // --- telemetry -----------------------------------------------------------

  [[nodiscard]] telemetry::MetricRegistry& registry() { return *registry_; }
  /// Flushes every shard engine's batched counters into the registry; call
  /// before sampling a snapshot (mirrors EventQueue::publish_telemetry).
  void publish_engine_telemetry();

  /// The always-on RTT plane (present whenever telemetry is enabled).
  /// Windows close automatically at every rtt window boundary of run_until;
  /// the last partial window is closed by a final run_until landing on a
  /// window multiple, or explicitly via rtt_plane().close_window(now()).
  [[nodiscard]] bool has_rtt_plane() const { return rtt_plane_ != nullptr; }
  [[nodiscard]] telemetry::RttPlane& rtt_plane();

  /// The streaming exporter declared with Scenario::stream_telemetry, or
  /// null when none was requested.
  [[nodiscard]] telemetry::TelemetryStream* stream() { return stream_.get(); }

  // --- fault plane ---------------------------------------------------------

  [[nodiscard]] bool has_faults() const { return !planes_.empty(); }
  /// The per-shard fault plane (sites live on the plane of the shard that
  /// executes them). Null when the scenario declared no faults.
  [[nodiscard]] fault::FaultPlane* fault_plane(std::size_t shard = 0);
  /// Total fault fires across all shards' planes.
  [[nodiscard]] std::uint64_t fault_fires() const;
  /// Fault fires at one site (sites are unique to one shard's plane).
  [[nodiscard]] std::uint64_t fault_fires_at(std::string_view site) const;
  /// Checks every fault rule against the union of probe sites requested by
  /// this testbed's components (links, ports, clocks, forwarders, plus
  /// anything installed after build() — RPC server stalls, mempools).
  /// Throws std::invalid_argument naming the first rule whose site matches
  /// no probe, with the registered sites for its kind — a typo'd site would
  /// otherwise never fire, silently. Runs automatically on the first
  /// run_until; call earlier to fail fast, or after late installs to
  /// re-check.
  void validate_fault_rules();

  // --- run state & fast path ----------------------------------------------

  /// The private run/stop flag of this testbed (the per-experiment
  /// equivalent of core::running()).
  [[nodiscard]] core::RunState& run_state() { return run_state_; }
  /// This testbed's private fast-path device table.
  [[nodiscard]] core::DeviceTable& fast_devices() { return fast_devices_; }
  /// A fast-path device declared with `fast_device(id, ...)`.
  [[nodiscard]] core::Device& fast_device(int id);

 private:
  friend class Scenario;
  Testbed() = default;

  struct DeviceEntry {
    std::string name;
    std::size_t shard = 0;
    std::unique_ptr<nic::Port> port;
  };
  struct LinkEntry {
    int from = -1;
    int to = -1;
    std::unique_ptr<wire::Link> link;
  };

  // Declaration order is destruction-order-sensitive: links reference ports
  // and channels, ports reference shard engines and fault planes, so the
  // members they point into must be declared first (destroyed last).
  core::RunState run_state_;
  std::unique_ptr<telemetry::MetricRegistry> owned_registry_;
  telemetry::MetricRegistry* registry_ = nullptr;
  // Ports and links hold RttShard pointers into the plane, and the stream
  // reads the registry and plane: both must outlive devices_/links_ below.
  std::unique_ptr<telemetry::RttPlane> rtt_plane_;
  std::unique_ptr<telemetry::TelemetryStream> stream_;
  std::unique_ptr<sim::ParallelRuntime> runtime_;
  std::vector<std::unique_ptr<fault::FaultPlane>> planes_;  // one per shard
  std::deque<wire::FrameChannel> channels_;
  std::map<int, DeviceEntry> devices_;
  std::vector<LinkEntry> links_;
  std::vector<std::unique_ptr<dut::Forwarder>> forwarders_;
  std::vector<std::unique_ptr<dut::VSwitch>> vswitches_;
  core::DeviceTable fast_devices_;
  bool fault_rules_validated_ = false;
};

}  // namespace moongen::testbed
