#include "testbed/testbed.hpp"

#include <stdexcept>
#include <string>

namespace moongen::testbed {

nic::Port& Testbed::port(int id) {
  const auto it = devices_.find(id);
  if (it == devices_.end())
    throw std::out_of_range("Testbed::port: no device " + std::to_string(id));
  return *it->second.port;
}

nic::Port& Testbed::port(std::string_view name) {
  for (auto& [id, entry] : devices_) {
    if (entry.name == name) return *entry.port;
  }
  throw std::out_of_range("Testbed::port: no device named " + std::string(name));
}

wire::Link& Testbed::link(int from, int to) {
  for (auto& entry : links_) {
    if (entry.from == from && entry.to == to) return *entry.link;
  }
  throw std::out_of_range("Testbed::link: no link " + std::to_string(from) + " -> " +
                          std::to_string(to));
}

wire::Link& Testbed::link_at(std::size_t index) {
  if (index >= links_.size())
    throw std::out_of_range("Testbed::link_at: index out of range");
  return *links_[index].link;
}

std::pair<int, int> Testbed::link_ends(std::size_t index) const {
  if (index >= links_.size())
    throw std::out_of_range("Testbed::link_ends: index out of range");
  return {links_[index].from, links_[index].to};
}

std::vector<int> Testbed::device_ids() const {
  std::vector<int> ids;
  ids.reserve(devices_.size());
  for (const auto& [id, entry] : devices_) ids.push_back(id);
  return ids;
}

dut::Forwarder& Testbed::forwarder(std::size_t index) {
  if (index >= forwarders_.size())
    throw std::out_of_range("Testbed::forwarder: index out of range");
  return *forwarders_[index];
}

dut::VSwitch& Testbed::vswitch(std::size_t index) {
  if (index >= vswitches_.size())
    throw std::out_of_range("Testbed::vswitch: index out of range");
  return *vswitches_[index];
}

sim::EventQueue& Testbed::engine(int device_id) {
  return runtime_->shard(shard_of(device_id));
}

sim::EventQueue& Testbed::engine() {
  if (runtime_->shard_count() != 1)
    throw std::logic_error(
        "Testbed::engine(): testbed has multiple shards; use engine(device_id)");
  return runtime_->shard(0);
}

std::size_t Testbed::shard_of(int device_id) const {
  const auto it = devices_.find(device_id);
  if (it == devices_.end())
    throw std::out_of_range("Testbed::shard_of: no device " + std::to_string(device_id));
  return it->second.shard;
}

void Testbed::run_for(double seconds) {
  runtime_->run_until(now() + static_cast<sim::SimTime>(seconds * 1e12));
}

std::uint64_t Testbed::cross_shard_frames() const {
  std::uint64_t total = 0;
  for (const auto& entry : links_) total += entry.link->remote_frames();
  return total;
}

void Testbed::publish_engine_telemetry() {
  for (std::size_t i = 0; i < runtime_->shard_count(); ++i)
    runtime_->shard(i).publish_telemetry();
}

telemetry::RttPlane& Testbed::rtt_plane() {
  if (rtt_plane_ == nullptr)
    throw std::logic_error("Testbed::rtt_plane: telemetry is disabled for this scenario");
  return *rtt_plane_;
}

fault::FaultPlane* Testbed::fault_plane(std::size_t shard) {
  if (shard >= planes_.size()) return nullptr;
  return planes_[shard].get();
}

std::uint64_t Testbed::fault_fires() const {
  std::uint64_t total = 0;
  for (const auto& plane : planes_) total += plane->total_fires();
  return total;
}

std::uint64_t Testbed::fault_fires_at(std::string_view site) const {
  std::uint64_t total = 0;
  for (const auto& plane : planes_) total += plane->fires_at(site);
  return total;
}

void Testbed::validate_fault_rules() {
  fault_rules_validated_ = true;
  if (planes_.empty()) return;
  // Every plane was built from the same spec copy, so rules come from
  // planes_[0]; probe sites are unioned across all shards' planes.
  for (const auto& rule : planes_[0]->spec().rules) {
    bool matched = false;
    for (const auto& plane : planes_) {
      for (const auto& req : plane->requested_sites()) {
        if (rule.matches(req.kind, req.name)) {
          matched = true;
          break;
        }
      }
      if (matched) break;
    }
    if (matched) continue;
    std::string msg = "Testbed::validate_fault_rules: rule '";
    msg += fault::to_string(rule.kind);
    msg += '@';
    msg += rule.site;
    msg += "' matches no probe site and can never fire. Sites probing ";
    msg += fault::to_string(rule.kind);
    msg += ':';
    bool any = false;
    for (const auto& plane : planes_) {
      for (const auto& req : plane->requested_sites()) {
        if (req.kind != rule.kind) continue;
        msg += any ? ", " : " ";
        msg += req.name;
        any = true;
      }
    }
    if (!any) msg += " (none)";
    throw std::invalid_argument(msg);
  }
}

core::Device& Testbed::fast_device(int id) {
  core::Device* dev = fast_devices_.find(id);
  if (dev == nullptr)
    throw std::out_of_range("Testbed::fast_device: no fast device " + std::to_string(id));
  return *dev;
}

}  // namespace moongen::testbed
