#include "testbed/testbed.hpp"

#include <stdexcept>
#include <string>

namespace moongen::testbed {

nic::Port& Testbed::port(int id) {
  const auto it = devices_.find(id);
  if (it == devices_.end())
    throw std::out_of_range("Testbed::port: no device " + std::to_string(id));
  return *it->second.port;
}

nic::Port& Testbed::port(std::string_view name) {
  for (auto& [id, entry] : devices_) {
    if (entry.name == name) return *entry.port;
  }
  throw std::out_of_range("Testbed::port: no device named " + std::string(name));
}

wire::Link& Testbed::link(int from, int to) {
  for (auto& entry : links_) {
    if (entry.from == from && entry.to == to) return *entry.link;
  }
  throw std::out_of_range("Testbed::link: no link " + std::to_string(from) + " -> " +
                          std::to_string(to));
}

dut::Forwarder& Testbed::forwarder(std::size_t index) {
  if (index >= forwarders_.size())
    throw std::out_of_range("Testbed::forwarder: index out of range");
  return *forwarders_[index];
}

sim::EventQueue& Testbed::engine(int device_id) {
  return runtime_->shard(shard_of(device_id));
}

sim::EventQueue& Testbed::engine() {
  if (runtime_->shard_count() != 1)
    throw std::logic_error(
        "Testbed::engine(): testbed has multiple shards; use engine(device_id)");
  return runtime_->shard(0);
}

std::size_t Testbed::shard_of(int device_id) const {
  const auto it = devices_.find(device_id);
  if (it == devices_.end())
    throw std::out_of_range("Testbed::shard_of: no device " + std::to_string(device_id));
  return it->second.shard;
}

void Testbed::run_for(double seconds) {
  runtime_->run_until(now() + static_cast<sim::SimTime>(seconds * 1e12));
}

std::uint64_t Testbed::cross_shard_frames() const {
  std::uint64_t total = 0;
  for (const auto& entry : links_) total += entry.link->remote_frames();
  return total;
}

void Testbed::publish_engine_telemetry() {
  for (std::size_t i = 0; i < runtime_->shard_count(); ++i)
    runtime_->shard(i).publish_telemetry();
}

fault::FaultPlane* Testbed::fault_plane(std::size_t shard) {
  if (shard >= planes_.size()) return nullptr;
  return planes_[shard].get();
}

std::uint64_t Testbed::fault_fires() const {
  std::uint64_t total = 0;
  for (const auto& plane : planes_) total += plane->total_fires();
  return total;
}

std::uint64_t Testbed::fault_fires_at(std::string_view site) const {
  std::uint64_t total = 0;
  for (const auto& plane : planes_) total += plane->fires_at(site);
  return total;
}

core::Device& Testbed::fast_device(int id) {
  core::Device* dev = fast_devices_.find(id);
  if (dev == nullptr)
    throw std::out_of_range("Testbed::fast_device: no fast device " + std::to_string(id));
  return *dev;
}

}  // namespace moongen::testbed
