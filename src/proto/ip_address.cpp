#include "proto/ip_address.hpp"

#include <cstdio>
#include <vector>

#include "proto/byte_order.hpp"

namespace moongen::proto {

std::optional<IPv4Address> IPv4Address::parse(std::string_view text) {
  std::uint32_t octets[4];
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') return std::nullopt;
    std::uint32_t v = 0;
    std::size_t digits = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      v = v * 10 + static_cast<std::uint32_t>(text[pos] - '0');
      if (v > 255 || ++digits > 3) return std::nullopt;
      ++pos;
    }
    octets[i] = v;
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return IPv4Address{static_cast<std::uint8_t>(octets[0]), static_cast<std::uint8_t>(octets[1]),
                     static_cast<std::uint8_t>(octets[2]), static_cast<std::uint8_t>(octets[3])};
}

std::uint32_t IPv4Address::to_network() const { return hton32(value); }

IPv4Address IPv4Address::from_network(std::uint32_t net_order) {
  return IPv4Address{ntoh32(net_order)};
}

std::string IPv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", value >> 24, (value >> 16) & 0xff,
                (value >> 8) & 0xff, value & 0xff);
  return buf;
}

namespace {

std::optional<std::uint16_t> parse_hex_group(std::string_view s) {
  if (s.empty() || s.size() > 4) return std::nullopt;
  std::uint32_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9')
      d = c - '0';
    else if (c >= 'a' && c <= 'f')
      d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F')
      d = c - 'A' + 10;
    else
      return std::nullopt;
    v = v << 4 | static_cast<std::uint32_t>(d);
  }
  return static_cast<std::uint16_t>(v);
}

}  // namespace

std::optional<IPv6Address> IPv6Address::parse(std::string_view text) {
  // Split at "::" if present, then parse colon-separated 16-bit groups on
  // each side and pad the middle with zeros.
  std::size_t dc = text.find("::");
  std::string_view head = (dc == std::string_view::npos) ? text : text.substr(0, dc);
  std::string_view tail = (dc == std::string_view::npos) ? std::string_view{} : text.substr(dc + 2);
  if (dc != std::string_view::npos && text.find("::", dc + 1) != std::string_view::npos)
    return std::nullopt;  // at most one "::"

  auto split_groups = [](std::string_view part) -> std::optional<std::vector<std::uint16_t>> {
    std::vector<std::uint16_t> groups;
    if (part.empty()) return groups;
    std::size_t start = 0;
    while (true) {
      std::size_t colon = part.find(':', start);
      std::string_view g =
          (colon == std::string_view::npos) ? part.substr(start) : part.substr(start, colon - start);
      auto v = parse_hex_group(g);
      if (!v) return std::nullopt;
      groups.push_back(*v);
      if (colon == std::string_view::npos) break;
      start = colon + 1;
    }
    return groups;
  };

  auto head_groups = split_groups(head);
  auto tail_groups = split_groups(tail);
  if (!head_groups || !tail_groups) return std::nullopt;

  const std::size_t total = head_groups->size() + tail_groups->size();
  if (dc == std::string_view::npos) {
    if (total != 8) return std::nullopt;
  } else {
    if (total > 7) return std::nullopt;  // "::" must stand for >= 1 group
  }

  IPv6Address out{};
  std::size_t idx = 0;
  for (std::uint16_t g : *head_groups) {
    out.bytes[idx++] = static_cast<std::uint8_t>(g >> 8);
    out.bytes[idx++] = static_cast<std::uint8_t>(g & 0xff);
  }
  idx = 16 - tail_groups->size() * 2;
  for (std::uint16_t g : *tail_groups) {
    out.bytes[idx++] = static_cast<std::uint8_t>(g >> 8);
    out.bytes[idx++] = static_cast<std::uint8_t>(g & 0xff);
  }
  return out;
}

std::string IPv6Address::to_string() const {
  // Canonical form without zero compression (sufficient for diagnostics).
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%x:%x:%x:%x:%x:%x:%x:%x",
                bytes[0] << 8 | bytes[1], bytes[2] << 8 | bytes[3], bytes[4] << 8 | bytes[5],
                bytes[6] << 8 | bytes[7], bytes[8] << 8 | bytes[9], bytes[10] << 8 | bytes[11],
                bytes[12] << 8 | bytes[13], bytes[14] << 8 | bytes[15]);
  return buf;
}

IPv6Address IPv6Address::plus(std::uint64_t offset) const {
  IPv6Address out = *this;
  std::uint64_t low = 0;
  for (int i = 8; i < 16; ++i) low = low << 8 | out.bytes[static_cast<std::size_t>(i)];
  low += offset;
  for (int i = 15; i >= 8; --i) {
    out.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(low & 0xff);
    low >>= 8;
  }
  return out;
}

}  // namespace moongen::proto
