#include "proto/packet_view.hpp"

#include <cstring>

#include "proto/checksum.hpp"

namespace moongen::proto {

void UdpPacketView::fill(const UdpFillOptions& opts) const {
  auto& e = eth();
  e.dst = opts.eth_dst;
  e.src = opts.eth_src;
  e.set_ether_type(EtherType::kIPv4);

  auto& i = ip();
  i.set_defaults();
  i.ttl = opts.ip_ttl;
  i.protocol = static_cast<std::uint8_t>(IpProtocol::kUdp);
  i.set_total_length(static_cast<std::uint16_t>(opts.packet_length - sizeof(EthernetHeader)));
  i.set_src(opts.ip_src);
  i.set_dst(opts.ip_dst);
  update_ipv4_checksum(i);

  auto& u = udp();
  u.set_src_port(opts.udp_src);
  u.set_dst_port(opts.udp_dst);
  u.set_length(static_cast<std::uint16_t>(opts.packet_length - sizeof(EthernetHeader) -
                                          sizeof(Ipv4Header)));
  u.checksum_be = 0;
}

void TcpPacketView::fill(const TcpFillOptions& opts) const {
  auto& e = eth();
  e.dst = opts.eth_dst;
  e.src = opts.eth_src;
  e.set_ether_type(EtherType::kIPv4);

  auto& i = ip();
  i.set_defaults();
  i.protocol = static_cast<std::uint8_t>(IpProtocol::kTcp);
  i.set_total_length(static_cast<std::uint16_t>(opts.packet_length - sizeof(EthernetHeader)));
  i.set_src(opts.ip_src);
  i.set_dst(opts.ip_dst);
  update_ipv4_checksum(i);

  auto& t = tcp();
  std::memset(&t, 0, sizeof(t));
  t.set_defaults();
  t.set_src_port(opts.tcp_src);
  t.set_dst_port(opts.tcp_dst);
  t.set_seq(opts.tcp_seq);
  t.flags = opts.tcp_flags;
}

void Udp6PacketView::fill(std::size_t packet_length, MacAddress eth_src, MacAddress eth_dst,
                          const IPv6Address& src, const IPv6Address& dst, std::uint16_t udp_src,
                          std::uint16_t udp_dst) const {
  auto& e = eth();
  e.dst = eth_dst;
  e.src = eth_src;
  e.set_ether_type(EtherType::kIPv6);

  auto& i = ip6();
  i.set_defaults();
  i.next_header = static_cast<std::uint8_t>(IpProtocol::kUdp);
  i.set_payload_length(static_cast<std::uint16_t>(packet_length - sizeof(EthernetHeader) -
                                                  sizeof(Ipv6Header)));
  i.src = src;
  i.dst = dst;

  auto& u = udp();
  u.set_src_port(udp_src);
  u.set_dst_port(udp_dst);
  u.set_length(i.payload_length());
  u.checksum_be = 0;
}

void EspPacketView::fill(std::size_t packet_length, MacAddress eth_src, MacAddress eth_dst,
                         IPv4Address ip_src, IPv4Address ip_dst, std::uint32_t spi,
                         std::uint32_t sequence) const {
  auto& e = eth();
  e.dst = eth_dst;
  e.src = eth_src;
  e.set_ether_type(EtherType::kIPv4);

  auto& i = ip();
  i.set_defaults();
  i.protocol = static_cast<std::uint8_t>(IpProtocol::kEsp);
  i.set_total_length(static_cast<std::uint16_t>(packet_length - sizeof(EthernetHeader)));
  i.set_src(ip_src);
  i.set_dst(ip_dst);
  update_ipv4_checksum(i);

  auto& s = esp();
  s.set_spi(spi);
  s.set_sequence(sequence);
}

std::optional<PacketClass> classify(std::span<const std::uint8_t> frame) {
  if (frame.size() < sizeof(EthernetHeader)) return std::nullopt;
  PacketClass pc;
  const auto* eth = reinterpret_cast<const EthernetHeader*>(frame.data());
  std::size_t offset = sizeof(EthernetHeader);
  std::uint16_t etype = ntoh16(eth->ether_type_be);

  // Up to two stacked tags: 802.1ad S-tag (0x88A8) or plain 0x8100 outer,
  // then an optional 0x8100 C-tag. A tag EtherType with a truncated tag
  // body is malformed, as is a third tag (deeper stacks are rejected
  // rather than misparsed as payload).
  for (int tag = 0; tag < 2 && (etype == static_cast<std::uint16_t>(EtherType::kVlan) ||
                                etype == static_cast<std::uint16_t>(EtherType::kQinQ));
       ++tag) {
    if (etype == static_cast<std::uint16_t>(EtherType::kQinQ) && tag == 1) {
      return std::nullopt;  // S-tag may only appear outermost
    }
    if (frame.size() < offset + sizeof(VlanTag)) return std::nullopt;
    const auto* vlan = reinterpret_cast<const VlanTag*>(frame.data() + offset);
    pc.has_vlan = true;
    pc.vlan_tags += 1;
    if (tag == 0) {
      pc.outer_vid = vlan->vid();
      pc.outer_pcp = vlan->pcp();
    } else {
      pc.inner_vid = vlan->vid();
      pc.inner_pcp = vlan->pcp();
    }
    etype = ntoh16(vlan->ether_type_be);
    offset += sizeof(VlanTag);
  }
  if (etype == static_cast<std::uint16_t>(EtherType::kVlan) ||
      etype == static_cast<std::uint16_t>(EtherType::kQinQ)) {
    return std::nullopt;  // three or more stacked tags: refuse to misparse
  }
  pc.ether_type = static_cast<EtherType>(etype);
  pc.l3_offset = offset;

  if (pc.ether_type == EtherType::kPtp) {
    pc.is_ptp_ethernet = true;
    return pc;
  }

  if (pc.ether_type == EtherType::kIPv4) {
    if (frame.size() < offset + sizeof(Ipv4Header)) return std::nullopt;
    const auto* ip = reinterpret_cast<const Ipv4Header*>(frame.data() + offset);
    if (ip->version() != 4 || ip->header_length() < sizeof(Ipv4Header)) return std::nullopt;
    pc.l4_protocol = ip->ip_protocol();
    pc.l4_offset = offset + ip->header_length();
  } else if (pc.ether_type == EtherType::kIPv6) {
    if (frame.size() < offset + sizeof(Ipv6Header)) return std::nullopt;
    const auto* ip6 = reinterpret_cast<const Ipv6Header*>(frame.data() + offset);
    if (ip6->version() != 6) return std::nullopt;
    pc.l4_protocol = static_cast<IpProtocol>(ip6->next_header);
    pc.l4_offset = offset + sizeof(Ipv6Header);
  } else {
    return pc;  // unclassified L3, still a valid Ethernet frame
  }

  if (pc.l4_protocol == IpProtocol::kUdp && frame.size() >= pc.l4_offset + sizeof(UdpHeader)) {
    const auto* udp = reinterpret_cast<const UdpHeader*>(frame.data() + pc.l4_offset);
    pc.is_udp = true;
    pc.udp_dst_port = udp->dst_port();
    pc.l7_offset = pc.l4_offset + sizeof(UdpHeader);
  } else if (pc.l4_protocol == IpProtocol::kTcp &&
             frame.size() >= pc.l4_offset + sizeof(TcpHeader)) {
    const auto* tcp = reinterpret_cast<const TcpHeader*>(frame.data() + pc.l4_offset);
    pc.l7_offset = pc.l4_offset + tcp->header_length();
  }
  return pc;
}

}  // namespace moongen::proto
