// Byte-order helpers for wire-format headers.
//
// All multi-byte fields in the header structs of this library are stored in
// network byte order (big endian).  These helpers convert between host and
// network order without pulling in platform socket headers, and are
// constexpr so they can be used in static initializers of packet templates.
#pragma once

#include <bit>
#include <cstdint>

namespace moongen::proto {

constexpr std::uint16_t byteswap16(std::uint16_t v) noexcept {
  return static_cast<std::uint16_t>((v >> 8) | (v << 8));
}

constexpr std::uint32_t byteswap32(std::uint32_t v) noexcept {
  return ((v & 0xff000000u) >> 24) | ((v & 0x00ff0000u) >> 8) |
         ((v & 0x0000ff00u) << 8) | ((v & 0x000000ffu) << 24);
}

constexpr std::uint64_t byteswap64(std::uint64_t v) noexcept {
  return (static_cast<std::uint64_t>(byteswap32(static_cast<std::uint32_t>(v))) << 32) |
         byteswap32(static_cast<std::uint32_t>(v >> 32));
}

constexpr bool kHostIsLittleEndian = (std::endian::native == std::endian::little);

/// Host to network (big-endian) conversion.
constexpr std::uint16_t hton16(std::uint16_t v) noexcept {
  return kHostIsLittleEndian ? byteswap16(v) : v;
}
constexpr std::uint32_t hton32(std::uint32_t v) noexcept {
  return kHostIsLittleEndian ? byteswap32(v) : v;
}
constexpr std::uint64_t hton64(std::uint64_t v) noexcept {
  return kHostIsLittleEndian ? byteswap64(v) : v;
}

/// Network (big-endian) to host conversion.
constexpr std::uint16_t ntoh16(std::uint16_t v) noexcept { return hton16(v); }
constexpr std::uint32_t ntoh32(std::uint32_t v) noexcept { return hton32(v); }
constexpr std::uint64_t ntoh64(std::uint64_t v) noexcept { return hton64(v); }

}  // namespace moongen::proto
