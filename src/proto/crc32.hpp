// IEEE 802.3 CRC32 (frame check sequence).
//
// The CRC-based software rate control (paper Section 8) deliberately
// transmits frames with an *incorrect* FCS so the device under test drops
// them in hardware; the NIC models use these routines to validate frames.
#pragma once

#include <cstdint>
#include <span>

namespace moongen::proto {

/// Reflected CRC-32 (polynomial 0xEDB88320) over `data`, as used for the
/// Ethernet FCS. Returns the value to be appended little-endian.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental form: feed chunks with `crc` initialized to 0xFFFFFFFF and
/// finalize by complementing.
std::uint32_t crc32_update(std::uint32_t crc, std::span<const std::uint8_t> data);

/// Appends the FCS for `data[0 .. size-4]` into the last 4 bytes of `data`.
void write_fcs(std::span<std::uint8_t> frame);

/// Checks that the last 4 bytes of `frame` hold the correct FCS.
bool verify_fcs(std::span<const std::uint8_t> frame);

}  // namespace moongen::proto
