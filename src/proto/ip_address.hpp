// IPv4 / IPv6 address value types with parsing and arithmetic.
//
// Mirrors MoonGen's `parseIPAddress` / `ip.src:set(base + offset)` idiom:
// addresses support integer offsets so generator scripts can randomize or
// sweep source addresses cheaply.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace moongen::proto {

/// IPv4 address held in *host* byte order so arithmetic is natural; use
/// `to_network()` / `from_network()` at the wire boundary.
struct IPv4Address {
  std::uint32_t value = 0;  // host byte order

  constexpr IPv4Address() = default;
  constexpr explicit IPv4Address(std::uint32_t host_order) : value(host_order) {}
  constexpr IPv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value(static_cast<std::uint32_t>(a) << 24 | static_cast<std::uint32_t>(b) << 16 |
              static_cast<std::uint32_t>(c) << 8 | d) {}

  /// Parses dotted-quad notation ("192.168.1.1").
  static std::optional<IPv4Address> parse(std::string_view text);

  [[nodiscard]] std::uint32_t to_network() const;
  static IPv4Address from_network(std::uint32_t net_order);

  [[nodiscard]] std::string to_string() const;

  constexpr IPv4Address operator+(std::uint32_t offset) const {
    return IPv4Address{value + offset};
  }
  constexpr IPv4Address operator-(std::uint32_t offset) const {
    return IPv4Address{value - offset};
  }
  constexpr IPv4Address& operator+=(std::uint32_t offset) {
    value += offset;
    return *this;
  }

  [[nodiscard]] constexpr bool is_multicast() const { return (value >> 28) == 0xe; }

  friend constexpr auto operator<=>(const IPv4Address&, const IPv4Address&) = default;
};

/// IPv6 address stored in wire (big-endian) order.
struct IPv6Address {
  // No default member initializer (see MacAddress); value-initialize for
  // zeroed bytes.
  std::array<std::uint8_t, 16> bytes;

  /// Parses the canonical textual forms including "::" compression
  /// ("2001:db8::1"). Does not support embedded IPv4 notation.
  static std::optional<IPv6Address> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  /// Adds `offset` to the low 64 bits (sufficient for address sweeps).
  [[nodiscard]] IPv6Address plus(std::uint64_t offset) const;

  friend constexpr auto operator<=>(const IPv6Address&, const IPv6Address&) = default;
};

static_assert(sizeof(IPv6Address) == 16);

}  // namespace moongen::proto
