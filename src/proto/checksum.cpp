#include "proto/checksum.hpp"

#include <cstring>

namespace moongen::proto {

std::uint32_t checksum_partial(std::span<const std::uint8_t> data, std::uint32_t initial) {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;  // pad odd byte
  return sum;
}

std::uint16_t checksum_finish(std::uint32_t partial) {
  while (partial >> 16) partial = (partial & 0xffff) + (partial >> 16);
  return hton16(static_cast<std::uint16_t>(~partial & 0xffff));
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return checksum_finish(checksum_partial(data));
}

void update_ipv4_checksum(Ipv4Header& ip) {
  ip.header_checksum_be = 0;
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&ip);
  ip.header_checksum_be = internet_checksum({bytes, ip.header_length()});
}

bool verify_ipv4_checksum(const Ipv4Header& ip) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&ip);
  // Checksum over a header including its checksum field must fold to zero.
  return checksum_finish(checksum_partial({bytes, ip.header_length()})) == 0;
}

std::uint32_t ipv6_pseudo_header_sum(const Ipv6Header& ip, std::uint32_t l4_length,
                                     std::uint8_t next_header) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i < 16; i += 2) {
    sum += static_cast<std::uint32_t>(ip.src.bytes[i]) << 8 | ip.src.bytes[i + 1];
    sum += static_cast<std::uint32_t>(ip.dst.bytes[i]) << 8 | ip.dst.bytes[i + 1];
  }
  sum += (l4_length >> 16) + (l4_length & 0xffff);
  sum += next_header;
  return sum;
}

namespace {

std::uint16_t l4_checksum_ipv4(const Ipv4Header& ip, std::span<const std::uint8_t> l4,
                               std::size_t checksum_offset) {
  std::uint32_t sum = ipv4_pseudo_header_sum(ip, static_cast<std::uint16_t>(l4.size()));
  sum = checksum_partial(l4.first(checksum_offset), sum);
  // Skip the checksum field itself (treated as zero).
  sum = checksum_partial(l4.subspan(checksum_offset + 2), sum);
  return checksum_finish(sum);
}

}  // namespace

std::uint16_t udp_checksum_ipv4(const Ipv4Header& ip, std::span<const std::uint8_t> l4) {
  const std::uint16_t csum = l4_checksum_ipv4(ip, l4, offsetof(UdpHeader, checksum_be));
  // RFC 768: a computed checksum of zero is transmitted as all ones.
  return csum == 0 ? 0xffff : csum;
}

std::uint16_t tcp_checksum_ipv4(const Ipv4Header& ip, std::span<const std::uint8_t> l4) {
  return l4_checksum_ipv4(ip, l4, offsetof(TcpHeader, checksum_be));
}

std::uint16_t udp_checksum_ipv6(const Ipv6Header& ip, std::span<const std::uint8_t> l4) {
  std::uint32_t sum = ipv6_pseudo_header_sum(ip, static_cast<std::uint32_t>(l4.size()),
                                             static_cast<std::uint8_t>(IpProtocol::kUdp));
  constexpr std::size_t kCsumOffset = offsetof(UdpHeader, checksum_be);
  sum = checksum_partial(l4.first(kCsumOffset), sum);
  sum = checksum_partial(l4.subspan(kCsumOffset + 2), sum);
  const std::uint16_t csum = checksum_finish(sum);
  return csum == 0 ? 0xffff : csum;
}

}  // namespace moongen::proto
