#include "proto/crc32.hpp"

#include <array>

namespace moongen::proto {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, std::span<const std::uint8_t> data) {
  for (std::uint8_t byte : data) crc = kTable[(crc ^ byte) & 0xff] ^ (crc >> 8);
  return crc;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return ~crc32_update(0xFFFFFFFFu, data);
}

void write_fcs(std::span<std::uint8_t> frame) {
  const std::uint32_t fcs = crc32(frame.first(frame.size() - 4));
  auto tail = frame.last(4);
  tail[0] = static_cast<std::uint8_t>(fcs & 0xff);
  tail[1] = static_cast<std::uint8_t>(fcs >> 8 & 0xff);
  tail[2] = static_cast<std::uint8_t>(fcs >> 16 & 0xff);
  tail[3] = static_cast<std::uint8_t>(fcs >> 24 & 0xff);
}

bool verify_fcs(std::span<const std::uint8_t> frame) {
  if (frame.size() < 5) return false;
  const std::uint32_t fcs = crc32(frame.first(frame.size() - 4));
  auto tail = frame.last(4);
  const std::uint32_t stored = static_cast<std::uint32_t>(tail[0]) |
                               static_cast<std::uint32_t>(tail[1]) << 8 |
                               static_cast<std::uint32_t>(tail[2]) << 16 |
                               static_cast<std::uint32_t>(tail[3]) << 24;
  return fcs == stored;
}

}  // namespace moongen::proto
