// Packed wire-format protocol headers.
//
// All multi-byte fields are stored in network byte order; use the accessor
// methods (which convert via byte_order.hpp) rather than touching raw fields.
// The structs intentionally have no invariants beyond their layout, so they
// are plain aggregates (Core Guidelines C.2).
#pragma once

#include <cstdint>

#include "proto/byte_order.hpp"
#include "proto/ip_address.hpp"
#include "proto/mac_address.hpp"

namespace moongen::proto {

// ---------------------------------------------------------------------------
// Ethernet
// ---------------------------------------------------------------------------

enum class EtherType : std::uint16_t {
  kIPv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,
  kQinQ = 0x88A8,  // 802.1ad service tag (S-tag) of a stacked VLAN pair
  kIPv6 = 0x86DD,
  kPtp = 0x88F7,  // IEEE 1588 PTP directly over Ethernet
};

struct [[gnu::packed]] EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type_be;

  [[nodiscard]] EtherType ether_type() const {
    return static_cast<EtherType>(ntoh16(ether_type_be));
  }
  void set_ether_type(EtherType t) { ether_type_be = hton16(static_cast<std::uint16_t>(t)); }
};
static_assert(sizeof(EthernetHeader) == 14);

struct [[gnu::packed]] VlanTag {
  std::uint16_t tci_be;         // PCP(3) | DEI(1) | VID(12)
  std::uint16_t ether_type_be;  // encapsulated EtherType

  [[nodiscard]] std::uint16_t vid() const { return ntoh16(tci_be) & 0x0fff; }
  [[nodiscard]] std::uint8_t pcp() const { return static_cast<std::uint8_t>(ntoh16(tci_be) >> 13); }
  void set(std::uint16_t vid, std::uint8_t pcp, bool dei = false) {
    tci_be = hton16(static_cast<std::uint16_t>((pcp & 0x7) << 13 | (dei ? 1 << 12 : 0) |
                                               (vid & 0x0fff)));
  }
};
static_assert(sizeof(VlanTag) == 4);

// ---------------------------------------------------------------------------
// ARP
// ---------------------------------------------------------------------------

struct [[gnu::packed]] ArpHeader {
  std::uint16_t htype_be;  // 1 = Ethernet
  std::uint16_t ptype_be;  // 0x0800 = IPv4
  std::uint8_t hlen;       // 6
  std::uint8_t plen;       // 4
  std::uint16_t oper_be;   // 1 = request, 2 = reply
  MacAddress sha;
  std::uint32_t spa_be;
  MacAddress tha;
  std::uint32_t tpa_be;

  static constexpr std::uint16_t kOperRequest = 1;
  static constexpr std::uint16_t kOperReply = 2;

  [[nodiscard]] std::uint16_t oper() const { return ntoh16(oper_be); }
  void set_ethernet_ipv4_defaults() {
    htype_be = hton16(1);
    ptype_be = hton16(0x0800);
    hlen = 6;
    plen = 4;
  }
  [[nodiscard]] IPv4Address sender_ip() const { return IPv4Address::from_network(spa_be); }
  [[nodiscard]] IPv4Address target_ip() const { return IPv4Address::from_network(tpa_be); }
  void set_sender_ip(IPv4Address a) { spa_be = a.to_network(); }
  void set_target_ip(IPv4Address a) { tpa_be = a.to_network(); }
};
static_assert(sizeof(ArpHeader) == 28);

// ---------------------------------------------------------------------------
// IPv4 / IPv6
// ---------------------------------------------------------------------------

enum class IpProtocol : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kEsp = 50,
  kAh = 51,
  kIcmpV6 = 58,
};

struct [[gnu::packed]] Ipv4Header {
  std::uint8_t version_ihl;  // 0x45 for a 20-byte header
  std::uint8_t dscp_ecn;
  std::uint16_t total_length_be;
  std::uint16_t identification_be;
  std::uint16_t flags_fragment_be;
  std::uint8_t ttl;
  std::uint8_t protocol;
  std::uint16_t header_checksum_be;
  std::uint32_t src_be;
  std::uint32_t dst_be;

  [[nodiscard]] std::uint8_t version() const { return version_ihl >> 4; }
  [[nodiscard]] std::size_t header_length() const {
    return static_cast<std::size_t>(version_ihl & 0x0f) * 4;
  }
  [[nodiscard]] std::uint16_t total_length() const { return ntoh16(total_length_be); }
  void set_total_length(std::uint16_t len) { total_length_be = hton16(len); }
  [[nodiscard]] IpProtocol ip_protocol() const { return static_cast<IpProtocol>(protocol); }

  [[nodiscard]] IPv4Address src() const { return IPv4Address::from_network(src_be); }
  [[nodiscard]] IPv4Address dst() const { return IPv4Address::from_network(dst_be); }
  void set_src(IPv4Address a) { src_be = a.to_network(); }
  void set_dst(IPv4Address a) { dst_be = a.to_network(); }

  /// Sets version=4, IHL=5, TTL=64 and zeroes checksum/fragment fields.
  void set_defaults() {
    version_ihl = 0x45;
    dscp_ecn = 0;
    identification_be = 0;
    flags_fragment_be = hton16(0x4000);  // don't fragment
    ttl = 64;
    header_checksum_be = 0;
  }
};
static_assert(sizeof(Ipv4Header) == 20);

struct [[gnu::packed]] Ipv6Header {
  std::uint32_t vtc_flow_be;  // version(4) | traffic class(8) | flow label(20)
  std::uint16_t payload_length_be;
  std::uint8_t next_header;
  std::uint8_t hop_limit;
  IPv6Address src;
  IPv6Address dst;

  [[nodiscard]] std::uint8_t version() const { return static_cast<std::uint8_t>(ntoh32(vtc_flow_be) >> 28); }
  [[nodiscard]] std::uint16_t payload_length() const { return ntoh16(payload_length_be); }
  void set_payload_length(std::uint16_t len) { payload_length_be = hton16(len); }
  void set_defaults() {
    vtc_flow_be = hton32(6u << 28);
    hop_limit = 64;
  }
};
static_assert(sizeof(Ipv6Header) == 40);

// ---------------------------------------------------------------------------
// UDP / TCP / ICMP
// ---------------------------------------------------------------------------

struct [[gnu::packed]] UdpHeader {
  std::uint16_t src_port_be;
  std::uint16_t dst_port_be;
  std::uint16_t length_be;
  std::uint16_t checksum_be;

  [[nodiscard]] std::uint16_t src_port() const { return ntoh16(src_port_be); }
  [[nodiscard]] std::uint16_t dst_port() const { return ntoh16(dst_port_be); }
  [[nodiscard]] std::uint16_t length() const { return ntoh16(length_be); }
  void set_src_port(std::uint16_t p) { src_port_be = hton16(p); }
  void set_dst_port(std::uint16_t p) { dst_port_be = hton16(p); }
  void set_length(std::uint16_t l) { length_be = hton16(l); }
};
static_assert(sizeof(UdpHeader) == 8);

struct [[gnu::packed]] TcpHeader {
  std::uint16_t src_port_be;
  std::uint16_t dst_port_be;
  std::uint32_t seq_be;
  std::uint32_t ack_be;
  std::uint8_t data_offset_reserved;  // offset in 32-bit words << 4
  std::uint8_t flags;
  std::uint16_t window_be;
  std::uint16_t checksum_be;
  std::uint16_t urgent_be;

  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;

  [[nodiscard]] std::uint16_t src_port() const { return ntoh16(src_port_be); }
  [[nodiscard]] std::uint16_t dst_port() const { return ntoh16(dst_port_be); }
  [[nodiscard]] std::size_t header_length() const {
    return static_cast<std::size_t>(data_offset_reserved >> 4) * 4;
  }
  void set_src_port(std::uint16_t p) { src_port_be = hton16(p); }
  void set_dst_port(std::uint16_t p) { dst_port_be = hton16(p); }
  void set_seq(std::uint32_t s) { seq_be = hton32(s); }
  [[nodiscard]] std::uint32_t seq() const { return ntoh32(seq_be); }
  void set_defaults() {
    data_offset_reserved = 5 << 4;
    window_be = hton16(0xffff);
    flags = kAck;
  }
};
static_assert(sizeof(TcpHeader) == 20);

struct [[gnu::packed]] IcmpHeader {
  std::uint8_t type;
  std::uint8_t code;
  std::uint16_t checksum_be;
  std::uint16_t identifier_be;
  std::uint16_t sequence_be;

  static constexpr std::uint8_t kEchoReply = 0;
  static constexpr std::uint8_t kEchoRequest = 8;
};
static_assert(sizeof(IcmpHeader) == 8);

// ---------------------------------------------------------------------------
// IPsec (header layouts only; no cryptography)
// ---------------------------------------------------------------------------

struct [[gnu::packed]] EspHeader {
  std::uint32_t spi_be;
  std::uint32_t sequence_be;

  [[nodiscard]] std::uint32_t spi() const { return ntoh32(spi_be); }
  void set_spi(std::uint32_t s) { spi_be = hton32(s); }
  void set_sequence(std::uint32_t s) { sequence_be = hton32(s); }
};
static_assert(sizeof(EspHeader) == 8);

struct [[gnu::packed]] AhHeader {
  std::uint8_t next_header;
  std::uint8_t payload_len;  // in 32-bit words minus 2
  std::uint16_t reserved_be;
  std::uint32_t spi_be;
  std::uint32_t sequence_be;
  // variable-length ICV follows
};
static_assert(sizeof(AhHeader) == 12);

// ---------------------------------------------------------------------------
// IEEE 1588 PTP
// ---------------------------------------------------------------------------

/// PTP message types (first nibble of the first payload byte).
enum class PtpMessageType : std::uint8_t {
  kSync = 0x0,
  kDelayReq = 0x1,
  kPdelayReq = 0x2,
  kPdelayResp = 0x3,
  kFollowUp = 0x8,
  kDelayResp = 0x9,
  kAnnounce = 0xb,
};

/// Minimal PTPv2 header. The NIC timestamp units only inspect the first two
/// bytes (message type and version), which the paper exploits to timestamp
/// almost arbitrary packets (Section 6).
struct [[gnu::packed]] PtpHeader {
  std::uint8_t transport_and_type;  // transportSpecific(4) | messageType(4)
  std::uint8_t reserved_and_version;  // reserved(4) | versionPTP(4)
  std::uint16_t message_length_be;
  std::uint8_t domain_number;
  std::uint8_t reserved1;
  std::uint16_t flags_be;
  std::uint64_t correction_be;
  std::uint32_t reserved2;
  std::uint8_t source_port_identity[10];
  std::uint16_t sequence_id_be;
  std::uint8_t control_field;
  std::uint8_t log_message_interval;

  static constexpr std::uint8_t kVersion2 = 2;
  /// The well-known PTP-over-UDP event port.
  static constexpr std::uint16_t kUdpEventPort = 319;

  [[nodiscard]] PtpMessageType message_type() const {
    return static_cast<PtpMessageType>(transport_and_type & 0x0f);
  }
  [[nodiscard]] std::uint8_t version() const { return reserved_and_version & 0x0f; }
  [[nodiscard]] std::uint16_t sequence_id() const { return ntoh16(sequence_id_be); }
  void set_message_type(PtpMessageType t) {
    transport_and_type = static_cast<std::uint8_t>((transport_and_type & 0xf0) |
                                                   (static_cast<std::uint8_t>(t) & 0x0f));
  }
  void set_version(std::uint8_t v) {
    reserved_and_version = static_cast<std::uint8_t>((reserved_and_version & 0xf0) | (v & 0x0f));
  }
  void set_sequence_id(std::uint16_t s) { sequence_id_be = hton16(s); }
};
static_assert(sizeof(PtpHeader) == 34);

// ---------------------------------------------------------------------------
// Frame-size constants (Ethernet)
// ---------------------------------------------------------------------------

/// Minimum Ethernet frame (excluding preamble/SFD/IFG, including FCS).
inline constexpr std::size_t kMinFrameSize = 64;
/// Standard maximum (non-jumbo) frame size including FCS.
inline constexpr std::size_t kMaxFrameSize = 1518;
/// Preamble (7) + SFD (1) + inter-frame gap (12): per-frame wire overhead.
inline constexpr std::size_t kWireOverhead = 20;
/// Frame check sequence length.
inline constexpr std::size_t kFcsSize = 4;

/// Bytes occupied on the wire by a frame of `frame_size` bytes
/// (frame_size counts the FCS, as in the paper's rate arithmetic).
constexpr std::size_t wire_size(std::size_t frame_size) { return frame_size + kWireOverhead; }

}  // namespace moongen::proto
