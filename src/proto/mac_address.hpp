// 48-bit IEEE MAC address value type.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace moongen::proto {

/// A 48-bit Ethernet MAC address stored in transmission (wire) order.
///
/// The type is a trivially copyable aggregate so it can be embedded directly
/// in packed wire-format header structs.
struct MacAddress {
  // No default member initializer: that would make the type non-POD in the
  // sense GCC's packed-layout check requires for embedding in headers.
  // Value-initialize (MacAddress{}) where zeroed bytes are needed.
  std::array<std::uint8_t, 6> bytes;

  /// Builds an address from the low 48 bits of `value`, most significant
  /// byte first (i.e. 0x101112131415 -> "10:11:12:13:14:15").
  static constexpr MacAddress from_uint64(std::uint64_t value) {
    MacAddress m;
    for (int i = 5; i >= 0; --i) {
      m.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value & 0xff);
      value >>= 8;
    }
    return m;
  }

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive, also accepts '-').
  /// Returns std::nullopt on malformed input.
  static std::optional<MacAddress> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t to_uint64() const {
    std::uint64_t v = 0;
    for (auto b : bytes) v = (v << 8) | b;
    return v;
  }

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr bool is_broadcast() const {
    for (auto b : bytes)
      if (b != 0xff) return false;
    return true;
  }

  [[nodiscard]] constexpr bool is_multicast() const { return (bytes[0] & 0x01) != 0; }

  friend constexpr auto operator<=>(const MacAddress&, const MacAddress&) = default;
};

static_assert(sizeof(MacAddress) == 6);

/// The all-ones broadcast address ff:ff:ff:ff:ff:ff.
inline constexpr MacAddress kBroadcastMac =
    MacAddress{{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}}};

}  // namespace moongen::proto
