// Typed packet views: zero-copy, header-stacked accessors over a raw frame.
//
// This is the C++ equivalent of MoonGen's `buf:getUdpPacket()` /
// `pkt:fill{...}` Lua idiom (paper Listing 2): a view interprets the bytes
// of a packet buffer as a stack of headers and `fill()` writes protocol
// defaults plus caller-selected fields in one call. Views never own memory
// and perform no bounds checks in release builds beyond construction —
// matching the paper's deliberate performance/safety tradeoff (Section 5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "proto/headers.hpp"

namespace moongen::proto {

/// Field bundle for `UdpPacketView::fill`. All members are optional in
/// spirit: default values produce a valid packet; override what you need,
/// mirroring Lua's table-based fill.
struct UdpFillOptions {
  std::size_t packet_length = 60;  // buffer length without FCS
  MacAddress eth_src{};
  MacAddress eth_dst{};
  IPv4Address ip_src = IPv4Address{10, 0, 0, 1};
  IPv4Address ip_dst = IPv4Address{10, 1, 0, 1};
  std::uint8_t ip_ttl = 64;
  std::uint16_t udp_src = 1024;
  std::uint16_t udp_dst = 1024;
};

struct TcpFillOptions {
  std::size_t packet_length = 60;
  MacAddress eth_src{};
  MacAddress eth_dst{};
  IPv4Address ip_src = IPv4Address{10, 0, 0, 1};
  IPv4Address ip_dst = IPv4Address{10, 1, 0, 1};
  std::uint16_t tcp_src = 1024;
  std::uint16_t tcp_dst = 1024;
  std::uint32_t tcp_seq = 0;
  std::uint8_t tcp_flags = TcpHeader::kAck;
};

/// View of an Ethernet frame. Construction requires at least the Ethernet
/// header to be present.
class EthPacketView {
 public:
  explicit EthPacketView(std::span<std::uint8_t> frame) : frame_(frame) {}

  [[nodiscard]] EthernetHeader& eth() const {
    return *reinterpret_cast<EthernetHeader*>(frame_.data());
  }
  [[nodiscard]] std::span<std::uint8_t> payload() const {
    return frame_.subspan(sizeof(EthernetHeader));
  }
  [[nodiscard]] std::span<std::uint8_t> bytes() const { return frame_; }
  [[nodiscard]] std::size_t size() const { return frame_.size(); }

 protected:
  std::span<std::uint8_t> frame_;
};

/// View of an Ethernet/IPv4 packet.
class Ipv4PacketView : public EthPacketView {
 public:
  using EthPacketView::EthPacketView;

  [[nodiscard]] Ipv4Header& ip() const {
    return *reinterpret_cast<Ipv4Header*>(frame_.data() + sizeof(EthernetHeader));
  }
  [[nodiscard]] std::span<std::uint8_t> l4_bytes() const {
    return frame_.subspan(sizeof(EthernetHeader) + ip().header_length());
  }
};

/// View of an Ethernet/IPv4/UDP packet.
class UdpPacketView : public Ipv4PacketView {
 public:
  using Ipv4PacketView::Ipv4PacketView;

  static constexpr std::size_t kHeaderStack =
      sizeof(EthernetHeader) + sizeof(Ipv4Header) + sizeof(UdpHeader);

  [[nodiscard]] UdpHeader& udp() const {
    return *reinterpret_cast<UdpHeader*>(frame_.data() + sizeof(EthernetHeader) +
                                         sizeof(Ipv4Header));
  }
  [[nodiscard]] std::span<std::uint8_t> udp_payload() const {
    return frame_.subspan(kHeaderStack);
  }

  /// Writes defaults + requested fields for the whole header stack and
  /// sets all length fields consistently for `opts.packet_length`.
  void fill(const UdpFillOptions& opts) const;
};

/// View of an Ethernet/IPv4/TCP packet.
class TcpPacketView : public Ipv4PacketView {
 public:
  using Ipv4PacketView::Ipv4PacketView;

  static constexpr std::size_t kHeaderStack =
      sizeof(EthernetHeader) + sizeof(Ipv4Header) + sizeof(TcpHeader);

  [[nodiscard]] TcpHeader& tcp() const {
    return *reinterpret_cast<TcpHeader*>(frame_.data() + sizeof(EthernetHeader) +
                                         sizeof(Ipv4Header));
  }
  void fill(const TcpFillOptions& opts) const;
};

/// View of an Ethernet/IPv4/ICMP packet.
class IcmpPacketView : public Ipv4PacketView {
 public:
  using Ipv4PacketView::Ipv4PacketView;
  [[nodiscard]] IcmpHeader& icmp() const {
    return *reinterpret_cast<IcmpHeader*>(frame_.data() + sizeof(EthernetHeader) +
                                          sizeof(Ipv4Header));
  }
};

/// View of an Ethernet/IPv6/UDP packet.
class Udp6PacketView : public EthPacketView {
 public:
  using EthPacketView::EthPacketView;

  static constexpr std::size_t kHeaderStack =
      sizeof(EthernetHeader) + sizeof(Ipv6Header) + sizeof(UdpHeader);

  [[nodiscard]] Ipv6Header& ip6() const {
    return *reinterpret_cast<Ipv6Header*>(frame_.data() + sizeof(EthernetHeader));
  }
  [[nodiscard]] UdpHeader& udp() const {
    return *reinterpret_cast<UdpHeader*>(frame_.data() + sizeof(EthernetHeader) +
                                         sizeof(Ipv6Header));
  }
  void fill(std::size_t packet_length, MacAddress eth_src, MacAddress eth_dst,
            const IPv6Address& src, const IPv6Address& dst, std::uint16_t udp_src,
            std::uint16_t udp_dst) const;
};

/// View of an Ethernet/IPv4/ESP packet (IPsec tunnel/transport framing;
/// the generator crafts load, not cryptography — like the paper's IPsec
/// example scripts).
class EspPacketView : public Ipv4PacketView {
 public:
  using Ipv4PacketView::Ipv4PacketView;

  static constexpr std::size_t kHeaderStack =
      sizeof(EthernetHeader) + sizeof(Ipv4Header) + sizeof(EspHeader);

  [[nodiscard]] EspHeader& esp() const {
    return *reinterpret_cast<EspHeader*>(frame_.data() + sizeof(EthernetHeader) +
                                         sizeof(Ipv4Header));
  }
  [[nodiscard]] std::span<std::uint8_t> esp_payload() const {
    return frame_.subspan(kHeaderStack);
  }

  /// Fills Ethernet/IPv4/ESP headers; `spi` and `sequence` per SA state.
  void fill(std::size_t packet_length, MacAddress eth_src, MacAddress eth_dst,
            IPv4Address ip_src, IPv4Address ip_dst, std::uint32_t spi,
            std::uint32_t sequence) const;
};

/// View of an Ethernet/IPv4/AH packet.
class AhPacketView : public Ipv4PacketView {
 public:
  using Ipv4PacketView::Ipv4PacketView;

  [[nodiscard]] AhHeader& ah() const {
    return *reinterpret_cast<AhHeader*>(frame_.data() + sizeof(EthernetHeader) +
                                        sizeof(Ipv4Header));
  }
};

// ---------------------------------------------------------------------------
// RX-side classification
// ---------------------------------------------------------------------------

/// Summary of the header stack found in a received frame. Used by the NIC
/// timestamp units (PTP detection) and example scripts.
struct PacketClass {
  EtherType ether_type{};
  bool has_vlan = false;  // at least one 802.1Q/802.1ad tag present
  std::uint8_t vlan_tags = 0;  // 0, 1 or 2 parsed tags
  std::uint16_t outer_vid = 0;  // first tag on the wire (S-tag if QinQ)
  std::uint8_t outer_pcp = 0;
  std::uint16_t inner_vid = 0;  // second tag (C-tag); valid iff vlan_tags == 2
  std::uint8_t inner_pcp = 0;
  std::optional<IpProtocol> l4_protocol;  // set for IPv4/IPv6
  std::size_t l3_offset = 0;
  std::size_t l4_offset = 0;
  std::size_t l7_offset = 0;  // payload after UDP/TCP, if any
  bool is_ptp_ethernet = false;              // EtherType 0x88F7
  bool is_udp = false;
  std::uint16_t udp_dst_port = 0;
};

/// Parses the outer headers of `frame` (without FCS). Returns nullopt for
/// truncated or non-Ethernet input.
std::optional<PacketClass> classify(std::span<const std::uint8_t> frame);

}  // namespace moongen::proto
