// RFC 1071 Internet checksum and the IPv4/IPv6 pseudo-header sums used by
// UDP/TCP checksum offloading.
//
// The NIC models emulate hardware checksum offload: as on the Intel X540,
// the driver (here: the generator core) must precompute the pseudo-header
// checksum, and the "hardware" finishes the sum over the payload
// (paper Section 5.6.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "proto/headers.hpp"

namespace moongen::proto {

/// Sums `data` as 16-bit big-endian words (without final fold/complement).
/// `initial` allows chaining partial sums.
std::uint32_t checksum_partial(std::span<const std::uint8_t> data, std::uint32_t initial = 0);

/// Folds a partial sum to 16 bits and complements it (ready for the wire,
/// big-endian).
std::uint16_t checksum_finish(std::uint32_t partial);

/// One-shot Internet checksum over `data` (returns wire/big-endian value).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Computes and stores the IPv4 header checksum in place.
void update_ipv4_checksum(Ipv4Header& ip);

/// Verifies the IPv4 header checksum.
bool verify_ipv4_checksum(const Ipv4Header& ip);

/// Partial sum of the IPv4 pseudo header (src, dst, protocol, L4 length).
/// This is the part the X540 cannot compute itself and MoonGen calculates
/// in software before enabling UDP/TCP offloading. Inline: this runs once
/// per transmitted packet on the offload fast path.
inline std::uint32_t ipv4_pseudo_header_sum(const Ipv4Header& ip, std::uint16_t l4_length) {
  const std::uint32_t src = ntoh32(ip.src_be);
  const std::uint32_t dst = ntoh32(ip.dst_be);
  return (src >> 16) + (src & 0xffff) + (dst >> 16) + (dst & 0xffff) + ip.protocol + l4_length;
}

/// Partial sum of the IPv6 pseudo header.
std::uint32_t ipv6_pseudo_header_sum(const Ipv6Header& ip, std::uint32_t l4_length,
                                     std::uint8_t next_header);

/// Full software UDP-over-IPv4 checksum over header+payload.
/// `l4` must point at the UDP header followed by `l4_length` total bytes.
std::uint16_t udp_checksum_ipv4(const Ipv4Header& ip, std::span<const std::uint8_t> l4);

/// Full software TCP-over-IPv4 checksum.
std::uint16_t tcp_checksum_ipv4(const Ipv4Header& ip, std::span<const std::uint8_t> l4);

/// Full software UDP-over-IPv6 checksum (mandatory in IPv6; RFC 2460).
std::uint16_t udp_checksum_ipv6(const Ipv6Header& ip, std::span<const std::uint8_t> l4);

}  // namespace moongen::proto
