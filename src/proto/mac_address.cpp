#include "proto/mac_address.hpp"

#include <cstdio>

namespace moongen::proto {
namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  MacAddress out{};
  std::size_t pos = 0;
  for (std::size_t octet = 0; octet < 6; ++octet) {
    if (pos + 2 > text.size()) return std::nullopt;
    const int hi = hex_digit(text[pos]);
    const int lo = hex_digit(text[pos + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.bytes[octet] = static_cast<std::uint8_t>(hi << 4 | lo);
    pos += 2;
    if (octet < 5) {
      if (pos >= text.size() || (text[pos] != ':' && text[pos] != '-')) return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return out;
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0], bytes[1],
                bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

}  // namespace moongen::proto
