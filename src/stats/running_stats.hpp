// Streaming mean / standard deviation (Welford) plus min/max tracking.
//
// Used everywhere the paper reports "x ± y" (Tables 1-3) and for the
// per-interval rate statistics of the counters.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace moongen::stats {

class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Combines two independently accumulated streams (Chan et al. parallel
  /// variance): the result is as if every sample of `other` had been
  /// add()ed here. Either side may be empty. Used for per-shard roll-ups,
  /// mirroring LogLinearHistogram::merge.
  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const std::uint64_t total = n_ + other.n_;
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / static_cast<double>(total);
    n_ = total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

  void reset() { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace moongen::stats
