// Fixed-bin-width histogram with percentile queries.
//
// Bin width maps directly to hardware timestamp granularity: the
// inter-arrival histograms of Figure 8 use 64 ns bins (the precision of the
// Intel 82580 capture NIC), the latency plots use the 10 GbE NICs' 6.4 ns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

namespace moongen::stats {

class Histogram {
 public:
  /// Values >= `max_value` are accumulated in a final overflow bin.
  Histogram(std::uint64_t bin_width, std::uint64_t max_value);

  void add(std::uint64_t value);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t bin_width() const { return bin_width_; }
  [[nodiscard]] std::size_t bin_count() const { return bins_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return bins_[i]; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

  /// Lower edge of bin i.
  [[nodiscard]] std::uint64_t bin_lower(std::size_t i) const { return i * bin_width_; }

  /// p in [0, 100]; returns the lower edge of the bin containing the
  /// p-th percentile sample (overflow counts as max_value).
  [[nodiscard]] std::uint64_t percentile(double p) const;
  [[nodiscard]] std::uint64_t median() const { return percentile(50.0); }

  /// Fraction of samples with value in [lo, hi] (inclusive, bin-resolved:
  /// a bin counts if its lower edge is within range).
  [[nodiscard]] double fraction_between(std::uint64_t lo, std::uint64_t hi) const;

  /// Fraction of samples falling in the bin containing `value`.
  [[nodiscard]] double fraction_at(std::uint64_t value) const;

  /// Prints "lower_edge count fraction%" rows for all non-empty bins.
  void print(std::ostream& os, double min_fraction = 0.0) const;

  /// Merges another histogram; throws std::invalid_argument if `other` has
  /// a different bin width or bin count.
  void merge(const Histogram& other);

 private:
  std::uint64_t bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace moongen::stats
