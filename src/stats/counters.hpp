// Throughput counters: the C++ equivalent of MoonGen's stats.lua.
//
// Counters sample packet/byte totals on `update*` calls, slice them into
// one-second intervals against an injected time source (wall clock for the
// real-time benchmarks, virtual time in simulations) and report mean and
// standard deviation of the per-interval rates on `finalize`, in the same
// "plain" and "CSV" formats as MoonGen.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "stats/running_stats.hpp"

namespace moongen::stats {

enum class Format { kPlain, kCsv };

/// Time source returning nanoseconds; monotonic.
using TimeSource = std::function<std::uint64_t()>;

/// Returns a TimeSource backed by std::chrono::steady_clock.
TimeSource wall_clock();

/// Base rate counter: tracks totals and per-interval rates.
class RateCounter {
 public:
  RateCounter(std::string name, Format format, TimeSource time_source,
              std::ostream* os = nullptr);
  virtual ~RateCounter() = default;

  /// Total packets / bytes seen so far.
  [[nodiscard]] std::uint64_t total_packets() const { return total_packets_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  /// Average rates over per-second intervals.
  [[nodiscard]] const RunningStats& mpps_stats() const { return mpps_; }
  [[nodiscard]] const RunningStats& mbit_stats() const { return mbit_; }

  /// Closes the last interval and prints the summary line.
  void finalize();

 protected:
  /// Records `packets`/`bytes` at the current time; emits an interval line
  /// whenever a one-second boundary is crossed.
  void record(std::uint64_t packets, std::uint64_t bytes);

 private:
  void close_interval(std::uint64_t now);
  void print_interval(double mpps, double mbit) const;

  std::string name_;
  Format format_;
  TimeSource time_;
  std::ostream* os_;
  std::uint64_t start_ns_;
  std::uint64_t interval_start_ns_;
  std::uint64_t interval_packets_ = 0;
  std::uint64_t interval_bytes_ = 0;
  std::uint64_t total_packets_ = 0;
  std::uint64_t total_bytes_ = 0;
  RunningStats mpps_;
  RunningStats mbit_;
  bool finalized_ = false;
};

/// Counter updated explicitly by the transmit loop —
/// `stats:newManualTxCounter` in the paper's Listing 2.
class ManualTxCounter : public RateCounter {
 public:
  using RateCounter::RateCounter;

  /// Records `packets` packets of `packet_size` bytes each.
  void update_with_size(std::uint64_t packets, std::size_t packet_size) {
    record(packets, packets * packet_size);
  }
};

/// Counter fed one received packet at a time — `stats:newPktRxCounter`.
class PktRxCounter : public RateCounter {
 public:
  using RateCounter::RateCounter;

  void count_packet(std::size_t bytes) { record(1, bytes); }
};

}  // namespace moongen::stats
