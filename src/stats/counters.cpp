#include "stats/counters.hpp"

#include <chrono>
#include <iomanip>
#include <iostream>
#include <mutex>

namespace moongen::stats {

namespace {
constexpr std::uint64_t kIntervalNs = 1'000'000'000;  // 1 s reporting interval

/// Counters of different tasks may share one stream; serialize the lines.
std::mutex& print_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

TimeSource wall_clock() {
  return [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
}

RateCounter::RateCounter(std::string name, Format format, TimeSource time_source,
                         std::ostream* os)
    : name_(std::move(name)),
      format_(format),
      time_(std::move(time_source)),
      os_(os),
      start_ns_(time_()),
      interval_start_ns_(start_ns_) {}

void RateCounter::record(std::uint64_t packets, std::uint64_t bytes) {
  std::uint64_t now = time_();
  // A virtual time source may jump backwards (e.g. a reset simulation
  // clock); clamping avoids the unsigned underflow below, which would spin
  // closing ~2^64/1e9 empty intervals.
  if (now < interval_start_ns_) now = interval_start_ns_;
  while (now - interval_start_ns_ >= kIntervalNs) close_interval(interval_start_ns_ + kIntervalNs);
  interval_packets_ += packets;
  interval_bytes_ += bytes;
  total_packets_ += packets;
  total_bytes_ += bytes;
}

void RateCounter::close_interval(std::uint64_t now) {
  const double seconds = static_cast<double>(now - interval_start_ns_) / 1e9;
  if (seconds > 0) {
    // Wire rate includes the 20 B preamble/IFG and 4 B FCS per frame, as
    // reported by MoonGen's device counters.
    const double mpps = static_cast<double>(interval_packets_) / seconds / 1e6;
    const double mbit =
        static_cast<double>(interval_bytes_ + interval_packets_ * 24) * 8.0 / seconds / 1e6;
    mpps_.add(mpps);
    mbit_.add(mbit);
    print_interval(mpps, mbit);
  }
  interval_start_ns_ = now;
  interval_packets_ = 0;
  interval_bytes_ = 0;
}

void RateCounter::print_interval(double mpps, double mbit) const {
  if (os_ == nullptr) return;
  std::scoped_lock lock(print_mutex());
  if (format_ == Format::kPlain) {
    *os_ << "[" << name_ << "] " << std::fixed << std::setprecision(2) << mpps << " Mpps, "
         << mbit << " MBit/s wire rate\n";
  } else {
    *os_ << name_ << "," << std::fixed << std::setprecision(4) << mpps << "," << mbit << "\n";
  }
}

void RateCounter::finalize() {
  if (finalized_) return;
  finalized_ = true;
  const std::uint64_t now = time_();
  if (interval_packets_ > 0 && now > interval_start_ns_) close_interval(now);
  if (os_ == nullptr) return;
  std::scoped_lock lock(print_mutex());
  if (format_ == Format::kPlain) {
    *os_ << "[" << name_ << "] TOTAL: " << total_packets_ << " packets, " << total_bytes_
         << " bytes; " << std::fixed << std::setprecision(2) << mpps_.mean() << " (StdDev "
         << mpps_.stddev() << ") Mpps, " << mbit_.mean() << " (StdDev " << mbit_.stddev()
         << ") MBit/s wire rate\n";
  } else {
    *os_ << name_ << ",total," << total_packets_ << "," << total_bytes_ << "," << std::fixed
         << std::setprecision(4) << mpps_.mean() << "," << mpps_.stddev() << "," << mbit_.mean()
         << "," << mbit_.stddev() << "\n";
  }
}

}  // namespace moongen::stats
