#include "stats/histogram.hpp"

#include <iomanip>
#include <stdexcept>
#include <string>

namespace moongen::stats {

Histogram::Histogram(std::uint64_t bin_width, std::uint64_t max_value) : bin_width_(bin_width) {
  if (bin_width == 0) throw std::invalid_argument("Histogram bin width must be > 0");
  bins_.resize(static_cast<std::size_t>(max_value / bin_width + 1), 0);
}

void Histogram::add(std::uint64_t value) {
  const std::size_t idx = static_cast<std::size_t>(value / bin_width_);
  if (idx < bins_.size())
    ++bins_[idx];
  else
    ++overflow_;
  ++total_;
}

std::uint64_t Histogram::percentile(double p) const {
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(total_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    seen += bins_[i];
    if (seen >= target) return bin_lower(i);
  }
  return bin_lower(bins_.size());  // in overflow
}

double Histogram::fraction_between(std::uint64_t lo, std::uint64_t hi) const {
  if (total_ == 0) return 0.0;
  std::uint64_t count = 0;
  const std::size_t first = static_cast<std::size_t>(lo / bin_width_);
  const std::size_t last = static_cast<std::size_t>(hi / bin_width_);
  for (std::size_t i = first; i <= last && i < bins_.size(); ++i) count += bins_[i];
  // The overflow bucket covers everything from the end of the last bin
  // upwards (same convention as fraction_at), so a range reaching past the
  // last bin includes it.
  if (last >= bins_.size()) count += overflow_;
  return static_cast<double>(count) / static_cast<double>(total_);
}

double Histogram::fraction_at(std::uint64_t value) const {
  if (total_ == 0) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(value / bin_width_);
  const std::uint64_t count = idx < bins_.size() ? bins_[idx] : overflow_;
  return static_cast<double>(count) / static_cast<double>(total_);
}

void Histogram::print(std::ostream& os, double min_fraction) const {
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    const double frac = static_cast<double>(bins_[i]) / static_cast<double>(total_);
    if (frac < min_fraction) continue;
    os << std::setw(10) << bin_lower(i) << "  " << std::setw(10) << bins_[i] << "  "
       << std::fixed << std::setprecision(2) << frac * 100.0 << "%\n";
  }
  if (overflow_ > 0) os << "  overflow  " << overflow_ << "\n";
}

void Histogram::merge(const Histogram& other) {
  // Merging different geometries would silently misfile counts: bin i of
  // `other` covers a different value range than bin i here.
  if (other.bin_width_ != bin_width_ || other.bins_.size() != bins_.size())
    throw std::invalid_argument("Histogram::merge: geometry mismatch (bin_width " +
                                std::to_string(other.bin_width_) + " vs " +
                                std::to_string(bin_width_) + ", bins " +
                                std::to_string(other.bins_.size()) + " vs " +
                                std::to_string(bins_.size()) + ")");
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  overflow_ += other.overflow_;
  total_ += other.total_;
}

}  // namespace moongen::stats
