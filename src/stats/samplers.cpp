#include "stats/samplers.hpp"

#include <stdexcept>

namespace moongen::stats {

ZipfSampler::ZipfSampler(std::size_t n, double skew, std::uint64_t seed)
    : skew_(skew), rng_(seed) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: empty support");
  if (n > UINT32_MAX) throw std::invalid_argument("ZipfSampler: support too large");
  if (skew < 0.0) throw std::invalid_argument("ZipfSampler: negative skew");

  std::vector<double> pmf(n);
  norm_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    pmf[i] = std::pow(static_cast<double>(i + 1), -skew);
    norm_ += pmf[i];
  }

  // Vose's alias method: scale each probability by n, pair every
  // under-full bucket with an over-full donor. After the build, bucket i
  // returns i with probability accept_[i] and alias_[i] otherwise.
  accept_.assign(n, 1.0);
  alias_.assign(n, 0);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  const double scale = static_cast<double>(n) / norm_;
  for (std::size_t i = 0; i < n; ++i) {
    pmf[i] *= scale;
    if (pmf[i] < 1.0)
      small.push_back(static_cast<std::uint32_t>(i));
    else
      large.push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    accept_[s] = pmf[s];
    alias_[s] = l;
    pmf[l] -= 1.0 - pmf[s];
    if (pmf[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers on either list are exactly-full buckets up to rounding.
  for (const std::uint32_t i : large) accept_[i] = 1.0;
  for (const std::uint32_t i : small) accept_[i] = 1.0;
}

std::uint64_t ZipfSampler::next() {
  // Two independent draws: reusing one word for bucket and coin would
  // correlate them and bias the acceptance step measurably at large n.
  const std::size_t bucket = static_cast<std::size_t>(rng_.next() % accept_.size());
  const double coin = rng_.next_double();
  return coin < accept_[bucket] ? bucket : alias_[bucket];
}

double ZipfSampler::probability(std::size_t rank) const {
  if (rank >= accept_.size()) return 0.0;
  return std::pow(static_cast<double>(rank + 1), -skew_) / norm_;
}

}  // namespace moongen::stats
