// Deterministic workload samplers for the RPC plane.
//
// The std::<distribution> classes are implementation-defined: the same seed
// produces different draws on libstdc++ and libc++, which breaks the
// testbed's byte-identical determinism contract the moment a workload is
// parameterized by a distribution. These samplers are self-contained —
// SplitMix64 plus closed-form inverse transforms — so a (parameters, seed)
// pair yields the same sequence on every platform.
//
// All samplers are allocation-free after construction: ZipfSampler builds a
// Walker/Vose alias table once (O(n) setup, O(1) per draw), the continuous
// samplers hold a handful of doubles. One draw is one or two RNG steps.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace moongen::stats {

/// SplitMix64 (Steele et al.): full-period 64-bit generator, 2 multiplies
/// and 3 xor-shifts per draw. Also usable as a seed mixer: construct from a
/// base seed and take successive next() values as derived stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1) with the full 53 bits of mantissa.
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::uint64_t state_;
};

/// Exponentially distributed positive reals with the given mean (inverse
/// CDF transform). The workhorse for Poisson arrivals and memoryless
/// service times.
class ExponentialSampler {
 public:
  ExponentialSampler(double mean, std::uint64_t seed) : mean_(mean), rng_(seed) {}

  double next() {
    // log1p(-u) with u in [0, 1) never evaluates log(0); the largest
    // possible draw is mean * 36.7 (u one ulp below 1).
    return -mean_ * std::log1p(-rng_.next_double());
  }

  [[nodiscard]] double mean() const { return mean_; }

 private:
  double mean_;
  SplitMix64 rng_;
};

/// Lognormally distributed positive reals: exp(N(mu, sigma^2)) via
/// Box-Muller (both normals of a pair are used, so draws cost one RNG step
/// amortized). Models heavy-ish-tailed service times: sigma around 0.5-1.0
/// gives the multi-modal "slow request" tails real caches exhibit.
class LognormalSampler {
 public:
  LognormalSampler(double mu, double sigma, std::uint64_t seed)
      : mu_(mu), sigma_(sigma), rng_(seed) {}

  /// Parameterized by the distribution mean (not the mean of the log):
  /// mu = ln(mean) - sigma^2/2, so mean() of the draws converges to `mean`.
  static LognormalSampler from_mean(double mean, double sigma, std::uint64_t seed) {
    return {std::log(mean) - sigma * sigma / 2.0, sigma, seed};
  }

  double next() {
    if (have_spare_) {
      have_spare_ = false;
      return std::exp(mu_ + sigma_ * spare_);
    }
    // Box-Muller on (0,1] x [0,1): 1-u keeps the log argument positive.
    const double u1 = 1.0 - rng_.next_double();
    const double u2 = rng_.next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return std::exp(mu_ + sigma_ * r * std::cos(theta));
  }

  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double mu_;
  double sigma_;
  SplitMix64 rng_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

/// Zipf-distributed ranks 0..n-1: P(rank = i) proportional to 1/(i+1)^skew.
/// Draws use a precomputed Walker/Vose alias table — one RNG step and one
/// table probe regardless of n — so a million-key popularity distribution
/// costs the same per draw as a coin flip. skew = 0 degenerates to uniform,
/// n = 1 always returns rank 0.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew, std::uint64_t seed);

  std::uint64_t next();

  /// Analytic probability of `rank` (for goodness-of-fit tests).
  [[nodiscard]] double probability(std::size_t rank) const;

  [[nodiscard]] std::size_t support() const { return accept_.size(); }
  [[nodiscard]] double skew() const { return skew_; }

 private:
  double skew_ = 0.0;
  double norm_ = 1.0;  // generalized harmonic number H(n, skew)
  std::vector<double> accept_;       // alias acceptance threshold per bucket
  std::vector<std::uint32_t> alias_; // fallback rank per bucket
  SplitMix64 rng_;
};

}  // namespace moongen::stats
