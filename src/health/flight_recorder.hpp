// Flight recorder: the last N scheduled events and fault fires per shard,
// in lock-free rings, dumped as JSON when something goes wrong.
//
// When a watchdog trips or an invariant checker fails mid-soak, the
// question is always "what was the simulation *doing*?" — and by then the
// interesting events are gone. The recorder keeps a bounded tail of
// (time, seq) pairs per shard, fed by the EventQueue's trace sink, plus
// every fault-plane fire with its site name, fed by the plane's fire hook.
// Both feeds are observation-only: recording changes no simulated outcome.
//
// Concurrency contract: each shard's ring has exactly one writer (that
// shard's worker thread). Entry fields and the head index are individual
// relaxed atomics with a release store on the head, so the watchdog's
// monitor thread can snapshot a *prefix-consistent* view without locks or
// data races. A snapshot taken while shards are running is best-effort
// (an entry may be from the ring's previous lap); one taken at a quiesced
// instant (global event, after run_until) is exact. Site names are
// interned before the run starts — the fire path does one map lookup, and
// the dump path reads an immutable table.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "sim/event_queue.hpp"

namespace moongen::telemetry {
struct Snapshot;
}

namespace moongen::health {

struct Violation;

class FlightRecorder {
 public:
  /// What one ring entry was: a scheduled event executing, or a fault fire.
  enum class EntryKind : std::uint8_t { kEvent = 0, kFaultFire = 1 };

  struct Entry {
    sim::SimTime time_ps = 0;
    std::uint64_t seq = 0;      // event seq; fault kind for fires
    EntryKind kind = EntryKind::kEvent;
    std::uint32_t site_id = 0;  // interned site name for fires; 0 = none
  };

  /// `capacity` entries retained per shard (rounded up to a power of two).
  explicit FlightRecorder(std::size_t shards, std::size_t capacity = 256);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// The EventQueue trace sink for `shard`; attach with set_trace_sink().
  /// Owned by the recorder; valid for its lifetime.
  [[nodiscard]] sim::EventTraceSink* sink(std::size_t shard);

  /// Pre-registers a fault site name so fires can record a compact id.
  /// Must be called before the run starts (the table is read without
  /// synchronization afterwards). Unknown sites record id 0 ("?").
  void intern_site(const std::string& site);

  /// Records a fault fire on `shard`'s ring. Called from the fault plane's
  /// fire hook on that shard's thread.
  void record_fault(std::size_t shard, const std::string& site, fault::FaultKind kind,
                    sim::SimTime now_ps);

  /// Snapshot of `shard`'s retained tail, oldest first. Best-effort while
  /// the shard is running; exact when quiesced (see header comment).
  [[nodiscard]] std::vector<Entry> snapshot(std::size_t shard) const;

  /// Total entries ever recorded on `shard` (monotonic, may exceed capacity).
  [[nodiscard]] std::uint64_t recorded(std::size_t shard) const;

  [[nodiscard]] const std::string& site_name(std::uint32_t id) const;

  /// Writes the full dump as JSON (schema "moongen-flight-recorder-v1"):
  /// the trip/violation reason, every accumulated checker violation, each
  /// shard's heartbeat + event tail, and optionally a full telemetry
  /// snapshot. This is the artifact CI uploads when a soak run fails.
  void dump_json(std::ostream& os, const std::string& reason,
                 const std::vector<Violation>& violations,
                 const std::vector<std::uint64_t>& heartbeats,
                 const telemetry::Snapshot* snapshot = nullptr) const;

 private:
  // One ring slot: per-field relaxed atomics so the single writer never
  // locks and a concurrent reader never races (values may tear *between*
  // fields only for in-flight slots of a live snapshot — documented).
  struct Slot {
    std::atomic<std::uint64_t> time_ps{0};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint32_t> meta{0};  // kind << 24 | site_id
  };
  struct alignas(64) Ring {
    std::unique_ptr<Slot[]> slots;
    std::size_t mask = 0;
    std::atomic<std::uint64_t> head{0};  // total pushed; slot = head & mask

    void push(sim::SimTime t, std::uint64_t seq, std::uint32_t meta);
  };

  class ShardSink : public sim::EventTraceSink {
   public:
    explicit ShardSink(Ring& ring) : ring_(ring) {}
    void on_event(sim::SimTime time_ps, std::uint64_t seq) override {
      ring_.push(time_ps, seq, 0);  // meta 0: kEvent, no site
    }

   private:
    Ring& ring_;
  };

  std::vector<Ring> shards_;
  std::vector<std::unique_ptr<ShardSink>> sinks_;
  std::vector<std::string> site_names_;  // id -> name; [0] == "?"
  std::unordered_map<std::string, std::uint32_t> site_ids_;
};

}  // namespace moongen::health
