#include "health/monitor.hpp"

#include <ostream>

#include "sim/parallel.hpp"
#include "telemetry/registry.hpp"
#include "testbed/testbed.hpp"

namespace moongen::health {

// --- DegradationGovernor ----------------------------------------------------

DegradationGovernor::DegradationGovernor(std::string label, GovernorConfig cfg,
                                         PressureFn pressure, ApplyFn apply)
    : label_(std::move(label)), cfg_(cfg), pressure_(std::move(pressure)),
      apply_(std::move(apply)) {}

void DegradationGovernor::tick() {
  const std::uint64_t p = pressure_();
  if (!primed_) {
    primed_ = true;
    last_pressure_ = p;
    return;
  }
  const std::uint64_t delta = p - last_pressure_;
  last_pressure_ = p;
  const bool hot = delta >= cfg_.pressure_threshold;
  if (hot) {
    ++hot_streak_;
    cool_streak_ = 0;
  } else {
    ++cool_streak_;
    hot_streak_ = 0;
  }
  if (!active_ && hot_streak_ >= cfg_.enter_windows) {
    active_ = true;
    ++enters_;
    tm_enter_.add(1);
    if (apply_) apply_(true, cfg_.degraded_keep);
  } else if (active_ && cool_streak_ >= cfg_.exit_windows) {
    active_ = false;
    ++recovers_;
    tm_recover_.add(1);
    if (apply_) apply_(false, 1.0);
  }
  tm_active_.set(active_ ? 1.0 : 0.0);
}

void DegradationGovernor::bind_telemetry(telemetry::MetricRegistry& registry,
                                         const std::string& prefix) {
  bind_telemetry(registry.shard(0), prefix);
}

void DegradationGovernor::bind_telemetry(telemetry::MetricTree& tree,
                                         const std::string& prefix) {
  tm_enter_ = tree.counter(prefix + ".enter");
  tm_recover_ = tree.counter(prefix + ".recover");
  tm_active_ = tree.gauge(prefix + ".active");
  tm_active_.set(0.0);
}

// --- HealthMonitor ----------------------------------------------------------

HealthMonitor::HealthMonitor(testbed::Testbed& tb, MonitorConfig cfg) : tb_(tb), cfg_(cfg) {
  auto& rt = tb_.runtime();
  recorder_ = std::make_unique<FlightRecorder>(rt.shard_count(), cfg_.recorder_capacity);
  // Intern every fault site before the run: the fire path then only reads
  // the table (see FlightRecorder's concurrency contract). Sites installed
  // after this constructor record as "?" — construct the monitor last.
  for (std::size_t s = 0; tb_.fault_plane(s) != nullptr; ++s) {
    auto* plane = tb_.fault_plane(s);
    for (const auto& req : plane->requested_sites()) recorder_->intern_site(req.name);
    plane->set_fire_hook([rec = recorder_.get(), s](const std::string& site,
                                                    fault::FaultKind kind, sim::SimTime t) {
      rec->record_fault(s, site, kind, t);
    });
  }
  for (std::size_t s = 0; s < rt.shard_count(); ++s)
    rt.shard(s).set_trace_sink(recorder_->sink(s));

  if (cfg_.default_checkers) {
    for (std::size_t s = 0; s < rt.shard_count(); ++s)
      checkers_.add("engine.shard" + std::to_string(s),
                    make_engine_checker(rt.shard(s), "shard" + std::to_string(s)));
    checkers_.add("link.conservation", make_link_checker(tb_));
    checkers_.add("port.accounting", make_port_checker(tb_));
    if (tb_.vswitch_count() > 0)
      checkers_.add("vswitch.conservation", make_vswitch_checker(tb_));
  }
  checkers_.bind_telemetry(tb_.registry(), "health");

  if (cfg_.enable_watchdog) watchdog_ = std::make_unique<Watchdog>(rt, cfg_.watchdog);
}

HealthMonitor::~HealthMonitor() {
  if (watchdog_ != nullptr) watchdog_->stop();
  auto& rt = tb_.runtime();
  for (std::size_t s = 0; s < rt.shard_count(); ++s) rt.shard(s).set_trace_sink(nullptr);
  for (std::size_t s = 0; tb_.fault_plane(s) != nullptr; ++s)
    tb_.fault_plane(s)->set_fire_hook({});
}

DegradationGovernor& HealthMonitor::add_governor(std::string label, GovernorConfig cfg,
                                                 DegradationGovernor::PressureFn pressure,
                                                 DegradationGovernor::ApplyFn apply) {
  auto gov = std::make_unique<DegradationGovernor>(std::move(label), cfg, std::move(pressure),
                                                   std::move(apply));
  gov->bind_telemetry(tb_.registry(), "health.degraded." + gov->label());
  governors_.push_back(std::move(gov));
  return *governors_.back();
}

void HealthMonitor::start(sim::SimTime until_ps) {
  const sim::SimTime first = tb_.now() + cfg_.window_ps;
  if (first <= until_ps)
    tb_.schedule_global(first, [this, first, until_ps] { tick(first, until_ps); });
  if (watchdog_ != nullptr) watchdog_->start();
}

void HealthMonitor::tick(sim::SimTime now_ps, sim::SimTime until_ps) {
  ++ticks_;
  const auto fresh = checkers_.run_all(now_ps);
  for (auto& gov : governors_) gov->tick();
  if (!fresh.empty() && on_violation_) on_violation_(fresh);
  const sim::SimTime next = now_ps + cfg_.window_ps;
  if (next <= until_ps)
    tb_.schedule_global(next, [this, next, until_ps] { tick(next, until_ps); });
}

std::vector<Violation> HealthMonitor::check_now() { return checkers_.run_all(tb_.now()); }

void HealthMonitor::dump(std::ostream& os, const std::string& reason, bool quiesced) {
  auto& rt = tb_.runtime();
  std::vector<std::uint64_t> heartbeats;
  heartbeats.reserve(rt.shard_count());
  for (std::size_t s = 0; s < rt.shard_count(); ++s) heartbeats.push_back(rt.heartbeat(s));
  if (!quiesced) {
    // Watchdog-trip path: shards may still be running, so only the
    // recorder's lock-free rings and the heartbeat atomics are safe —
    // no engine-counter flush, no simulated-clock read.
    recorder_->dump_json(os, reason, checkers_.violations(), heartbeats, nullptr);
    return;
  }
  tb_.publish_engine_telemetry();
  const telemetry::Snapshot snap = tb_.registry().snapshot(tb_.now() / 1000);
  recorder_->dump_json(os, reason, checkers_.violations(), heartbeats, &snap);
}

}  // namespace moongen::health
