// HealthMonitor: glue between a Testbed and the health plane's pieces —
// checkers on a periodic window, the flight recorder on every shard, an
// optional wall-clock watchdog, and graceful-degradation governors.
//
// One object, one call:
//
//   health::MonitorConfig hc;
//   hc.enable_watchdog = true;
//   health::HealthMonitor mon(*tb, hc);
//   mon.start(end_ps);         // periodic global check ticks
//   tb->run_until(end_ps);
//   if (!mon.violations().empty()) { mon.dump(std::cerr, "..."); ... }
//
// Everything the monitor attaches is observation-only (trace sinks, fire
// hooks, checkers): a monitored run is byte-identical to an unmonitored
// one. The single intentional exception is degradation — a governor whose
// pressure threshold trips *does* change behavior (that is its job), and
// a governor that never trips changes nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "health/flight_recorder.hpp"
#include "health/health.hpp"
#include "health/watchdog.hpp"
#include "sim/time.hpp"

namespace moongen::testbed {
class Testbed;
}

namespace moongen::telemetry {

}

namespace moongen::health {

// --- graceful degradation ---------------------------------------------------

struct GovernorConfig {
  /// A window is "hot" when the pressure counter grew by at least this
  /// much since the previous window.
  std::uint64_t pressure_threshold = 1;
  /// Consecutive hot windows before entering degraded mode.
  std::uint64_t enter_windows = 3;
  /// Consecutive cool windows before recovering (hysteresis: strictly
  /// more than 1 so a single quiet window doesn't flap the mode).
  std::uint64_t exit_windows = 5;
  /// Load fraction to keep while degraded (handed to the apply hook).
  double degraded_keep = 0.5;
};

/// Watches one cumulative pressure counter (rx_overflow drops, mempool
/// exhaustion events, ...) at window boundaries and drives a shed/restore
/// hook with hysteresis. Deterministic: decisions depend only on the
/// simulated counter values, never on wall time.
class DegradationGovernor {
 public:
  /// Cumulative, monotonic pressure reading (deltas are formed per window).
  using PressureFn = std::function<std::uint64_t()>;
  /// Applies the mode: `degraded` with the keep fraction to use (1.0 on
  /// recovery). Typically forwards to OpenLoopGenerator::set_keep_fraction.
  using ApplyFn = std::function<void(bool degraded, double keep)>;

  DegradationGovernor(std::string label, GovernorConfig cfg, PressureFn pressure, ApplyFn apply);

  /// Window-boundary evaluation; called by the HealthMonitor's tick.
  void tick();

  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] std::uint64_t enters() const { return enters_; }
  [[nodiscard]] std::uint64_t recovers() const { return recovers_; }

  /// `<prefix>.enter` / `<prefix>.recover` counters + `<prefix>.active`
  /// gauge (prefix is typically "health.degraded.<label>").
  void bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix);
  /// Convenience overload: binds into the registry's default tree (shard 0).
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix);

 private:
  std::string label_;
  GovernorConfig cfg_;
  PressureFn pressure_;
  ApplyFn apply_;
  std::uint64_t last_pressure_ = 0;
  bool primed_ = false;  // first tick only establishes the baseline
  std::uint64_t hot_streak_ = 0;
  std::uint64_t cool_streak_ = 0;
  bool active_ = false;
  std::uint64_t enters_ = 0;
  std::uint64_t recovers_ = 0;
  telemetry::CounterHandle tm_enter_;
  telemetry::CounterHandle tm_recover_;
  telemetry::GaugeHandle tm_active_;
};

// --- the monitor ------------------------------------------------------------

struct MonitorConfig {
  /// Checker / governor evaluation period (virtual time).
  sim::SimTime window_ps = 1'000'000'000;  // 1 ms
  /// Flight-recorder entries retained per shard.
  std::size_t recorder_capacity = 256;
  /// Install the testbed-wide default checkers (per-shard engine audit,
  /// link conservation, port accounting). App-specific checkers (RPC
  /// clients, mempools) are added via checkers().add().
  bool default_checkers = true;
  /// Start a wall-clock watchdog thread over the runtime's heartbeats.
  bool enable_watchdog = false;
  WatchdogConfig watchdog;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(testbed::Testbed& tb, MonitorConfig cfg = {});
  /// Detaches every trace sink and fire hook and stops the watchdog.
  ~HealthMonitor();
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  [[nodiscard]] CheckerRegistry& checkers() { return checkers_; }
  [[nodiscard]] FlightRecorder& recorder() { return *recorder_; }
  /// Null unless cfg.enable_watchdog.
  [[nodiscard]] Watchdog* watchdog() { return watchdog_.get(); }

  /// Registers a degradation governor, evaluated on every window tick.
  DegradationGovernor& add_governor(std::string label, GovernorConfig cfg,
                                    DegradationGovernor::PressureFn pressure,
                                    DegradationGovernor::ApplyFn apply);

  /// Schedules the periodic check tick as a recurring global event from
  /// the next window boundary up to `until_ps`, and starts the watchdog
  /// if enabled. Call once, before the run.
  void start(sim::SimTime until_ps);

  /// Fresh violations from each tick are handed to this callback (global
  /// context, quiesced — safe to dump and stop the runtime).
  void set_on_violation(std::function<void(const std::vector<Violation>&)> fn) {
    on_violation_ = std::move(fn);
  }

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return checkers_.violations();
  }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] std::uint64_t watchdog_trips() const {
    return watchdog_ != nullptr ? watchdog_->trips() : 0;
  }

  /// Writes the flight-recorder JSON dump: reason, accumulated violations,
  /// per-shard heartbeats and event tails, full telemetry snapshot. Pass
  /// `quiesced = false` from a watchdog trip callback (shards may still be
  /// running): the dump then sticks to the lock-free recorder rings and
  /// heartbeat atomics and omits the telemetry snapshot.
  void dump(std::ostream& os, const std::string& reason, bool quiesced = true);

  /// Runs every checker once at the current virtual time (also done by the
  /// periodic tick; call after the run for a final quiesced pass).
  std::vector<Violation> check_now();

 private:
  void tick(sim::SimTime now_ps, sim::SimTime until_ps);

  testbed::Testbed& tb_;
  MonitorConfig cfg_;
  CheckerRegistry checkers_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<Watchdog> watchdog_;
  std::vector<std::unique_ptr<DegradationGovernor>> governors_;
  std::function<void(const std::vector<Violation>&)> on_violation_;
  std::uint64_t ticks_ = 0;
};

}  // namespace moongen::health
