#include "health/flight_recorder.hpp"

#include <ostream>

#include "health/health.hpp"
#include "telemetry/exporters.hpp"

namespace moongen::health {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
}

}  // namespace

void FlightRecorder::Ring::push(sim::SimTime t, std::uint64_t seq, std::uint32_t meta) {
  const std::uint64_t h = head.load(std::memory_order_relaxed);
  Slot& s = slots[h & mask];
  s.time_ps.store(t, std::memory_order_relaxed);
  s.seq.store(seq, std::memory_order_relaxed);
  s.meta.store(meta, std::memory_order_relaxed);
  // Release: a reader that observes head > h sees slot h's fields.
  head.store(h + 1, std::memory_order_release);
}

FlightRecorder::FlightRecorder(std::size_t shards, std::size_t capacity) {
  std::size_t cap = 1;
  while (cap < capacity) cap <<= 1;
  shards_ = std::vector<Ring>(shards);
  for (auto& ring : shards_) {
    ring.slots = std::make_unique<Slot[]>(cap);
    ring.mask = cap - 1;
    sinks_.push_back(std::make_unique<ShardSink>(ring));
  }
  site_names_.push_back("?");
}

sim::EventTraceSink* FlightRecorder::sink(std::size_t shard) { return sinks_.at(shard).get(); }

void FlightRecorder::intern_site(const std::string& site) {
  if (site_ids_.count(site) != 0) return;
  const auto id = static_cast<std::uint32_t>(site_names_.size());
  site_names_.push_back(site);
  site_ids_.emplace(site, id);
}

void FlightRecorder::record_fault(std::size_t shard, const std::string& site,
                                  fault::FaultKind kind, sim::SimTime now_ps) {
  const auto it = site_ids_.find(site);
  const std::uint32_t site_id = it != site_ids_.end() ? it->second : 0;
  const std::uint32_t meta =
      (static_cast<std::uint32_t>(EntryKind::kFaultFire) << 24) | (site_id & 0xffffffu);
  shards_.at(shard).push(now_ps, static_cast<std::uint64_t>(kind), meta);
}

std::vector<FlightRecorder::Entry> FlightRecorder::snapshot(std::size_t shard) const {
  const Ring& ring = shards_.at(shard);
  const std::uint64_t h = ring.head.load(std::memory_order_acquire);
  const std::uint64_t cap = ring.mask + 1;
  const std::uint64_t n = h < cap ? h : cap;
  std::vector<Entry> out;
  out.reserve(n);
  for (std::uint64_t i = h - n; i < h; ++i) {
    const Slot& s = ring.slots[i & ring.mask];
    Entry e;
    e.time_ps = s.time_ps.load(std::memory_order_relaxed);
    e.seq = s.seq.load(std::memory_order_relaxed);
    const std::uint32_t meta = s.meta.load(std::memory_order_relaxed);
    e.kind = static_cast<EntryKind>(meta >> 24);
    e.site_id = meta & 0xffffffu;
    out.push_back(e);
  }
  return out;
}

std::uint64_t FlightRecorder::recorded(std::size_t shard) const {
  return shards_.at(shard).head.load(std::memory_order_acquire);
}

const std::string& FlightRecorder::site_name(std::uint32_t id) const {
  return id < site_names_.size() ? site_names_[id] : site_names_[0];
}

void FlightRecorder::dump_json(std::ostream& os, const std::string& reason,
                               const std::vector<Violation>& violations,
                               const std::vector<std::uint64_t>& heartbeats,
                               const telemetry::Snapshot* snapshot) const {
  os << "{\n  \"schema\": \"moongen-flight-recorder-v1\",\n  \"reason\": \"";
  write_escaped(os, reason);
  os << "\",\n  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"checker\": \"";
    write_escaped(os, v.checker);
    os << "\", \"when_ps\": " << v.when_ps << ", \"detail\": \"";
    write_escaped(os, v.detail);
    os << "\"}";
  }
  os << (violations.empty() ? "]" : "\n  ]") << ",\n  \"shards\": [";
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    os << (s == 0 ? "\n" : ",\n") << "    {\"shard\": " << s << ", \"heartbeat\": "
       << (s < heartbeats.size() ? heartbeats[s] : 0) << ", \"recorded\": " << recorded(s)
       << ", \"events\": [";
    const auto entries = this->snapshot(s);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const Entry& e = entries[i];
      os << (i == 0 ? "\n" : ",\n") << "      {\"time_ps\": " << e.time_ps;
      if (e.kind == EntryKind::kFaultFire) {
        os << ", \"kind\": \"fault\", \"fault\": \""
           << fault::to_string(static_cast<fault::FaultKind>(e.seq)) << "\", \"site\": \"";
        write_escaped(os, site_name(e.site_id));
        os << "\"}";
      } else {
        os << ", \"kind\": \"event\", \"seq\": " << e.seq << "}";
      }
    }
    os << (entries.empty() ? "]}" : "\n    ]}");
  }
  os << (shards_.empty() ? "]" : "\n  ]");
  if (snapshot != nullptr) {
    os << ",\n  \"telemetry\": ";
    telemetry::write_json(os, *snapshot);
  }
  os << "\n}\n";
}

}  // namespace moongen::health
