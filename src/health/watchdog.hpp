// Watchdog: wall-clock stall detection for the parallel runtime.
//
// The conservative-lookahead barrier in sim::ParallelRuntime is the one
// place the simulation can genuinely deadlock: if a shard worker wedges (a
// runaway event loop, an injected stall that never unwinds, a lost epoch
// marker), every other shard parks at the barrier forever and the process
// just... sits. The watchdog gives that silence a voice: a monitor thread
// samples each shard's heartbeat counter on a wall-clock cadence, and when
// no shard has made progress for a configurable budget while the runtime
// claims to be running, it trips — invoking a callback (typically a flight
// recorder dump) with the frozen heartbeat vector.
//
// TSan-clean by construction: the monitor reads only atomics (relaxed
// heartbeats, acquire running flag) and never touches simulation state.
// One trip per stall episode: after tripping, the watchdog re-arms only
// once heartbeats move again.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace moongen::sim {
class ParallelRuntime;
}

namespace moongen::health {

struct WatchdogConfig {
  /// Heartbeat sampling period.
  std::uint64_t poll_ms = 50;
  /// Wall-clock budget: no shard progress for this long while running
  /// trips the watchdog. Must comfortably exceed the longest legitimate
  /// between-heartbeat gap (one lookahead window's worth of events).
  std::uint64_t budget_ms = 2000;
};

class Watchdog {
 public:
  /// Everything the trip callback gets: which wall-clock budget expired
  /// and the per-shard heartbeat counters frozen at trip time.
  struct StallReport {
    std::uint64_t stalled_ms = 0;
    std::vector<std::uint64_t> heartbeats;
  };
  using TripFn = std::function<void(const StallReport&)>;

  Watchdog(sim::ParallelRuntime& runtime, WatchdogConfig cfg = {});
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers the trip callback (invoked from the monitor thread; it must
  /// only touch data safe to read concurrently — the flight recorder's
  /// snapshot path qualifies). Set before start().
  void set_on_trip(TripFn fn) { on_trip_ = std::move(fn); }

  void start();
  void stop();

  [[nodiscard]] std::uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }

 private:
  void monitor_loop();
  /// True if any shard's heartbeat differs from `seen` (which is updated).
  bool progressed(std::vector<std::uint64_t>& seen) const;

  sim::ParallelRuntime& runtime_;
  WatchdogConfig cfg_;
  TripFn on_trip_;
  std::thread thread_;
  std::atomic<bool> quit_{false};
  std::atomic<std::uint64_t> trips_{0};
};

}  // namespace moongen::health
