#include "health/health.hpp"

#include <sstream>

#include "core/timestamper.hpp"
#include "membuf/mempool.hpp"
#include "rpc/open_loop.hpp"
#include "telemetry/rtt_plane.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/registry.hpp"
#include "testbed/testbed.hpp"
#include "wire/link.hpp"

namespace moongen::health {

void CheckerRegistry::add(std::string name, CheckFn fn) {
  names_.push_back(std::move(name));
  checkers_.push_back(std::move(fn));
}

std::vector<Violation> CheckerRegistry::run_all(sim::SimTime now_ps) {
  std::vector<Violation> fresh;
  for (std::size_t i = 0; i < checkers_.size(); ++i) {
    ++checks_run_;
    CheckResult r = checkers_[i](now_ps);
    if (r.ok) continue;
    fresh.push_back(Violation{names_[i], std::move(r.detail), now_ps});
  }
  for (const auto& v : fresh) violations_.push_back(v);
  if (tm_checks_.valid()) {
    tm_checks_.add(checks_run_ - tm_checks_published_);
    tm_checks_published_ = checks_run_;
    tm_violations_.add(violations_.size() - tm_violations_published_);
    tm_violations_published_ = violations_.size();
  }
  return fresh;
}

void CheckerRegistry::bind_telemetry(telemetry::MetricRegistry& registry,
                                     const std::string& prefix) {
  bind_telemetry(registry.shard(0), prefix);
}

void CheckerRegistry::bind_telemetry(telemetry::MetricTree& tree,
                                     const std::string& prefix) {
  tm_checks_ = tree.counter(prefix + ".checks_run");
  tm_violations_ = tree.counter(prefix + ".violations");
  tree.gauge(prefix + ".checkers").set(static_cast<double>(checkers_.size()));
}

// --- factories --------------------------------------------------------------

CheckFn make_engine_checker(sim::EventQueue& engine, std::string label) {
  // last_now lives in the closure: monotonicity is checked between
  // successive evaluations, not against an absolute epoch.
  return [&engine, label = std::move(label),
          last_now = sim::SimTime{0}](sim::SimTime) mutable -> CheckResult {
    const sim::SimTime now = engine.now();
    if (now < last_now) {
      std::ostringstream os;
      os << "engine " << label << ": virtual time moved backwards (" << last_now << " -> "
         << now << " ps)";
      return CheckResult::fail(os.str());
    }
    last_now = now;
    if (std::string msg = engine.audit(); !msg.empty())
      return CheckResult::fail("engine " + label + ": " + msg);
    return CheckResult::pass();
  };
}

CheckFn make_link_checker(testbed::Testbed& tb) {
  return [&tb](sim::SimTime) -> CheckResult {
    for (std::size_t i = 0; i < tb.link_count(); ++i) {
      const wire::Link& l = tb.link_at(i);
      const auto [from, to] = tb.link_ends(i);
      const std::uint64_t in = l.frames_carried() + l.duplicated();
      const std::uint64_t out = l.flap_drops() + l.fault_drops() + l.delivered();
      std::ostringstream os;
      if (in != out) {
        os << "link " << from << "->" << to << ": frame conservation broken: carried "
           << l.frames_carried() << " + dup " << l.duplicated() << " != flap_drops "
           << l.flap_drops() << " + fault_drops " << l.fault_drops() << " + delivered "
           << l.delivered();
        return CheckResult::fail(os.str());
      }
      // Effect counters vs the fault plane's own fire books — exact equality.
      struct Pair {
        const char* what;
        std::uint64_t effect;
        std::uint64_t fires;
      };
      const Pair pairs[] = {
          {"loss", l.fault_drops(), l.loss_fault_fires()},
          {"corrupt", l.corrupted(), l.corrupt_fault_fires()},
          {"reorder", l.reordered(), l.reorder_fault_fires()},
          {"dup", l.duplicated(), l.dup_fault_fires()},
          {"flap", l.flaps(), l.flap_fault_fires()},
      };
      for (const auto& p : pairs) {
        if (p.effect == p.fires) continue;
        os << "link " << from << "->" << to << ": " << p.what << " effect count " << p.effect
           << " disagrees with fault-plane fires " << p.fires;
        return CheckResult::fail(os.str());
      }
    }
    return CheckResult::pass();
  };
}

CheckFn make_port_checker(testbed::Testbed& tb) {
  return [&tb](sim::SimTime) -> CheckResult {
    for (const int id : tb.device_ids()) {
      std::uint64_t delivered_in = 0;
      bool has_inbound = false;
      for (std::size_t i = 0; i < tb.link_count(); ++i) {
        if (tb.link_ends(i).second != id) continue;
        has_inbound = true;
        delivered_in += tb.link_at(i).delivered();
      }
      if (!has_inbound) continue;
      const auto& st = tb.port(id).stats();
      const std::uint64_t accounted = st.crc_errors + st.rx_packets;
      std::ostringstream os;
      if (accounted > delivered_in) {
        os << "port " << id << ": accounted " << accounted << " frames (crc " << st.crc_errors
           << " + rx " << st.rx_packets << ") exceeds " << delivered_in
           << " delivered by inbound links (double count)";
        return CheckResult::fail(os.str());
      }
      if (st.rx_ring_drops > st.rx_packets) {
        os << "port " << id << ": rx_ring_drops " << st.rx_ring_drops << " exceeds rx_packets "
           << st.rx_packets;
        return CheckResult::fail(os.str());
      }
    }
    return CheckResult::pass();
  };
}

CheckFn make_vswitch_checker(testbed::Testbed& tb) {
  return [&tb](sim::SimTime) -> CheckResult {
    for (std::size_t vi = 0; vi < tb.vswitch_count(); ++vi) {
      const auto& vs = tb.vswitch(vi);
      std::ostringstream os;
      const std::uint64_t settled = vs.matched() + vs.flooded() + vs.shaped_drops() +
                                    vs.queue_drops() + vs.fault_drops();
      if (settled != vs.received()) {
        os << "vswitch " << vi << ": ingress conservation broken: received " << vs.received()
           << " != matched " << vs.matched() << " + flooded " << vs.flooded()
           << " + shaped_drops " << vs.shaped_drops() << " + queue_drops " << vs.queue_drops()
           << " + fault_drops " << vs.fault_drops();
        return CheckResult::fail(os.str());
      }
      const std::uint64_t admitted = vs.matched() + vs.flooded();
      const std::uint64_t out = vs.emitted() + vs.egress_ring_drops() + vs.queued();
      if (admitted != out) {
        os << "vswitch " << vi << ": egress conservation broken: matched+flooded " << admitted
           << " != emitted " << vs.emitted() << " + egress_ring_drops " << vs.egress_ring_drops()
           << " + queued " << vs.queued();
        return CheckResult::fail(os.str());
      }
      // Per-tenant books (incl. the built-in flood queue) must sum to the
      // switch-wide totals — a mismatch means a frame was booked to the
      // wrong tenant or to none.
      std::uint64_t t_matched = 0, t_shaped = 0, t_queue_drops = 0, t_queued = 0;
      for (std::size_t k = 0; k <= vs.tenant_count(); ++k) {
        const auto& c = vs.tenant_counters(k);
        t_matched += c.matched;
        t_shaped += c.shaped_drops;
        t_queue_drops += c.queue_drops;
        t_queued += c.queued;
      }
      if (t_matched != admitted || t_shaped != vs.shaped_drops() ||
          t_queue_drops != vs.queue_drops() || t_queued != vs.queued()) {
        os << "vswitch " << vi << ": per-tenant books disagree with totals: sum matched "
           << t_matched << " vs " << admitted << ", shaped " << t_shaped << " vs "
           << vs.shaped_drops() << ", queue_drops " << t_queue_drops << " vs "
           << vs.queue_drops() << ", queued " << t_queued << " vs " << vs.queued();
        return CheckResult::fail(os.str());
      }
    }
    return CheckResult::pass();
  };
}

CheckFn make_rpc_checker(const rpc::detail::ClientBase& client) {
  return [&client](sim::SimTime) -> CheckResult {
    const std::uint64_t settled = client.matched() + client.timed_out() + client.send_drops();
    const std::uint64_t accounted = settled + client.inflight();
    if (accounted == client.issued()) return CheckResult::pass();
    std::ostringstream os;
    os << "rpc client: issued " << client.issued() << " != matched " << client.matched()
       << " + timed_out " << client.timed_out() << " + send_drops " << client.send_drops()
       << " + inflight " << client.inflight();
    return CheckResult::fail(os.str());
  };
}

CheckFn make_mempool_checker(const membuf::Mempool& pool, std::function<std::size_t()> held_fn) {
  return [&pool, held_fn = std::move(held_fn)](sim::SimTime) -> CheckResult {
    if (std::string msg = pool.audit(); !msg.empty())
      return CheckResult::fail("mempool: " + msg);
    if (held_fn) {
      const std::size_t held = held_fn();
      if (pool.available() + held != pool.capacity()) {
        std::ostringstream os;
        os << "mempool: conservation broken: available " << pool.available() << " + held "
           << held << " != capacity " << pool.capacity()
           << (pool.available() + held < pool.capacity() ? " (leak)" : " (double free)");
        return CheckResult::fail(os.str());
      }
    }
    return CheckResult::pass();
  };
}

CheckFn make_rtt_checker(const telemetry::RttPlane& plane) {
  return [&plane](sim::SimTime) -> CheckResult {
    const std::int64_t in_flight = plane.in_flight();
    if (in_flight < 0) {
      std::ostringstream os;
      os << "rtt plane: in_flight " << in_flight << " < 0: births (tx_stamped "
         << plane.tx_stamped() << " + tx_forwarded " << plane.tx_forwarded()
         << " + duplicated " << plane.duplicated() << ") < deaths (rx_seen "
         << plane.rx_seen() << " + dropped " << plane.dropped() << ")";
      return CheckResult::fail(os.str());
    }
    if (plane.cumulative().total() != plane.recorded()) {
      std::ostringstream os;
      os << "rtt plane: cumulative histogram population " << plane.cumulative().total()
         << " != recorded " << plane.recorded();
      return CheckResult::fail(os.str());
    }
    if (plane.recorded() > plane.rx_seen()) {
      std::ostringstream os;
      os << "rtt plane: recorded " << plane.recorded() << " exceeds rx_seen "
         << plane.rx_seen() << " (a sample was recorded outside an accepted RX)";
      return CheckResult::fail(os.str());
    }
    return CheckResult::pass();
  };
}

CheckFn make_timestamper_checker(const core::Timestamper& ts) {
  return [&ts](sim::SimTime) -> CheckResult {
    const std::uint64_t in_flight = ts.sample_in_flight() ? 1 : 0;
    if (ts.attempts() == ts.samples() + ts.lost() + ts.discarded() + in_flight)
      return CheckResult::pass();
    std::ostringstream os;
    os << "timestamper: attempts " << ts.attempts() << " != samples " << ts.samples()
       << " + lost " << ts.lost() << " + discarded " << ts.discarded() << " + in_flight "
       << in_flight << " (an attempt resolved without being counted)";
    return CheckResult::fail(os.str());
  };
}

}  // namespace moongen::health
