#include "health/watchdog.hpp"

#include <chrono>

#include "sim/parallel.hpp"

namespace moongen::health {

Watchdog::Watchdog(sim::ParallelRuntime& runtime, WatchdogConfig cfg)
    : runtime_(runtime), cfg_(cfg) {}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start() {
  if (thread_.joinable()) return;
  quit_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { monitor_loop(); });
}

void Watchdog::stop() {
  if (!thread_.joinable()) return;
  quit_.store(true, std::memory_order_release);
  thread_.join();
}

bool Watchdog::progressed(std::vector<std::uint64_t>& seen) const {
  bool moved = false;
  for (std::size_t s = 0; s < runtime_.shard_count(); ++s) {
    const std::uint64_t hb = runtime_.heartbeat(s);
    if (hb != seen[s]) {
      seen[s] = hb;
      moved = true;
    }
  }
  return moved;
}

void Watchdog::monitor_loop() {
  std::vector<std::uint64_t> seen(runtime_.shard_count(), 0);
  std::uint64_t stalled_ms = 0;
  bool tripped_this_episode = false;
  while (!quit_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg_.poll_ms));
    if (!runtime_.running()) {
      // Between run_until calls: nothing is supposed to progress.
      stalled_ms = 0;
      tripped_this_episode = false;
      progressed(seen);  // refresh the baseline
      continue;
    }
    if (progressed(seen)) {
      stalled_ms = 0;
      tripped_this_episode = false;
      continue;
    }
    stalled_ms += cfg_.poll_ms;
    if (stalled_ms < cfg_.budget_ms || tripped_this_episode) continue;
    tripped_this_episode = true;
    trips_.fetch_add(1, std::memory_order_relaxed);
    if (on_trip_) {
      StallReport report;
      report.stalled_ms = stalled_ms;
      report.heartbeats = seen;
      on_trip_(report);
    }
  }
}

}  // namespace moongen::health
