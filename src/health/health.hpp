// Invariant checkers: the runtime health plane's first line of defense.
//
// Long soak runs fail in ways unit tests never see: a leaked mempool
// buffer, a frame double-counted across a shard boundary, an in-flight
// table entry that neither matches nor times out. Each of those breaks a
// conservation law the subsystems already expose counters for — the health
// plane's job is to *cross-check* those books at window boundaries, off
// the hot path, and scream with context when they disagree.
//
// Design rules:
//  * Checkers are observation-only. Running them must not change a single
//    simulated outcome: a run with checkers enabled is byte-identical to a
//    run without (the chaos-soak CI job diffs exactly that).
//  * Checkers run at quiesced instants (testbed global events, or after
//    run_until returns), so they may read any shard's components without
//    synchronization.
//  * A checker returns a failed CheckResult instead of throwing: the
//    registry accumulates violations so a soak run can dump the flight
//    recorder and exit nonzero with *all* broken invariants, not just the
//    first.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/handles.hpp"

namespace moongen::telemetry {
class MetricRegistry;
class RttPlane;
}  // namespace moongen::telemetry

namespace moongen::core {
class Timestamper;
}

namespace moongen::sim {
class EventQueue;
}

namespace moongen::membuf {
class Mempool;
}

namespace moongen::rpc::detail {
class ClientBase;
}

namespace moongen::testbed {
class Testbed;
}

namespace moongen::health {

/// Outcome of one checker evaluation. `ok == false` carries a description
/// of the violated invariant with the numbers that broke it.
struct CheckResult {
  bool ok = true;
  std::string detail;

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string detail) { return {false, std::move(detail)}; }
};

/// One invariant evaluation: called with the current virtual time at a
/// quiesced instant. Checkers may keep mutable state in their closure
/// (e.g. the last observed clock for monotonicity checks).
using CheckFn = std::function<CheckResult(sim::SimTime now_ps)>;

/// A recorded checker failure.
struct Violation {
  std::string checker;
  std::string detail;
  sim::SimTime when_ps = 0;
};

/// Named collection of invariant checkers, evaluated together at window
/// boundaries. Accumulates every violation ever observed (a soak run
/// reports them all at exit; the flight recorder embeds them in its dump).
class CheckerRegistry {
 public:
  void add(std::string name, CheckFn fn);

  /// Evaluates every checker at `now_ps`. Returns the violations from this
  /// pass only; they are also appended to violations().
  std::vector<Violation> run_all(sim::SimTime now_ps);

  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  [[nodiscard]] std::size_t checker_count() const { return checkers_.size(); }
  /// Total checker evaluations (checkers x passes).
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }
  [[nodiscard]] const std::vector<std::string>& names() const { return names_; }

  /// Mirrors `<prefix>.checks_run` / `<prefix>.violations` counters and the
  /// `<prefix>.checkers` gauge into `registry`.
  void bind_telemetry(telemetry::MetricTree& tree, const std::string& prefix = "health");
  /// Convenience overload: binds into the registry's default tree (shard 0).
  void bind_telemetry(telemetry::MetricRegistry& registry, const std::string& prefix = "health");

 private:
  std::vector<std::string> names_;
  std::vector<CheckFn> checkers_;
  std::vector<Violation> violations_;
  std::uint64_t checks_run_ = 0;
  telemetry::CounterHandle tm_checks_;
  telemetry::CounterHandle tm_violations_;
  std::uint64_t tm_checks_published_ = 0;
  std::uint64_t tm_violations_published_ = 0;
};

// --- checker factories ------------------------------------------------------
//
// Each returns a CheckFn closed over the subsystem it audits. The factories
// for testbed-wide laws take the Testbed and walk its topology enumeration,
// so a checker built once keeps covering links/ports added by the scenario.

/// Event-engine structural audit (EventQueue::audit: node conservation
/// across freelist/wheel/ready/heap, occupancy bitmap, wheel horizon) plus
/// virtual-time monotonicity across evaluations.
[[nodiscard]] CheckFn make_engine_checker(sim::EventQueue& engine, std::string label);

/// Per-link frame conservation across every link of `tb`:
///   frames_carried + duplicated == flap_drops + fault_drops + delivered
/// and the link's drop/corrupt/reorder/dup/flap counters reconciled against
/// its FaultPoints' own fire counts (they must agree exactly — a mismatch
/// means a fault fired without its effect, or vice versa).
[[nodiscard]] CheckFn make_link_checker(testbed::Testbed& tb);

/// Per-port receive accounting across every device of `tb`: frames
/// delivered by inbound links, minus those accounted by the port
/// (crc_errors + rx_packets), is the in-flight count — it must never go
/// negative (a negative value means a frame was counted twice or conjured
/// from nothing). Also rx_ring_drops <= rx_packets (drops are counted after
/// receipt in this model).
[[nodiscard]] CheckFn make_port_checker(testbed::Testbed& tb);

/// Virtual-switch frame conservation across every vswitch of `tb`. Two
/// disjoint-outcome identities, exact at any quiesced instant:
///   ingress: received == matched + flooded + shaped_drops + queue_drops
///            + fault_drops
///   egress:  matched + flooded == emitted + egress_ring_drops + queued
/// A broken ingress identity means a frame took two outcomes (or none); a
/// broken egress identity means a queued frame leaked or was emitted twice.
/// Per-tenant books must also sum to the switch-wide totals.
[[nodiscard]] CheckFn make_vswitch_checker(testbed::Testbed& tb);

/// RPC client conservation: issued == matched + timed_out + send_drops +
/// in-flight table size. Exact at any quiesced instant — every issued
/// request is in exactly one of those states.
[[nodiscard]] CheckFn make_rpc_checker(const rpc::detail::ClientBase& client);

/// Mempool conservation + structural audit. `held_fn` (optional) is the
/// holder's own count of buffers it believes it has: the identity
/// available() + held_fn() == capacity() catches leaked and double-freed
/// buffers that the holder's books don't know about. audit() additionally
/// validates the free list itself (foreign pointers, duplicates).
[[nodiscard]] CheckFn make_mempool_checker(const membuf::Mempool& pool,
                                           std::function<std::size_t()> held_fn = {});

/// RTT-plane stamp conservation across all shards' RttShards:
///   births (tx_stamped + tx_forwarded + duplicated)
///     == deaths (rx_seen + dropped) + in-flight,   in-flight >= 0
/// A negative in-flight means a stamped frame was double-counted or an RTT
/// was conjured from nothing. Also: the cumulative histogram population
/// equals recorded() (every recorded sample landed in exactly one bucket)
/// and recorded() <= rx_seen() (recording only happens at accepted RX).
[[nodiscard]] CheckFn make_rtt_checker(const telemetry::RttPlane& plane);

/// Timestamper sampled-pair conservation:
///   attempts == samples + lost + discarded + (0 or 1 in flight)
/// Under fault-plane loss the sampled path must count the lost stamp as
/// lost — not leave it dangling — so that it and the always-on RTT plane
/// tell the same drop story (both are audited at the same instants).
/// Discarded covers attempts whose probe arrived but whose measurement
/// was unusable (occupied stamp register, clock-sync negative delta).
[[nodiscard]] CheckFn make_timestamper_checker(const core::Timestamper& ts);

}  // namespace moongen::health
