// MoonGen module bindings for the embedded scripting language.
//
// Exposes the fast-path generator to scripts with the API of the paper's
// listings: `device.config`, `queue:setRate`, `memory.createMemPool`,
// `buf:getUdpPacket():fill{...}`, `stats:newManualTxCounter`,
// `mg.launchLua`, `dpdk.running()` — so the quality-of-service example of
// Section 4 runs nearly verbatim. Each slave task spawned by `launchLua`
// gets its own interpreter over the shared chunk, pinned to a core,
// mirroring MoonGen's one-LuaJIT-VM-per-task architecture (Figure 1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "script/interpreter.hpp"

namespace moongen::script {

/// Runs MoonGen userscripts: owns the parsed chunk and the slave tasks.
class ScriptRuntime {
 public:
  /// Parses `source` (throws ScriptError on syntax errors).
  explicit ScriptRuntime(std::string_view source);
  ~ScriptRuntime();

  ScriptRuntime(const ScriptRuntime&) = delete;
  ScriptRuntime& operator=(const ScriptRuntime&) = delete;

  /// Executes the chunk's top level and then `master(args...)` in the
  /// calling thread. Slave tasks keep running until they return; call
  /// wait() (or let mg.waitForSlaves() in the script do it).
  void run_master(std::vector<Value> args = {});

  /// Joins all slave tasks.
  void wait();

  /// Number of slave tasks launched so far.
  [[nodiscard]] std::size_t slaves_launched() const;

  /// The master interpreter (for inspecting globals in tests).
  [[nodiscard]] Interpreter& master() { return *master_; }

  /// Shared slave-task state (public so the binding layer can reach it).
  struct Shared;

 private:
  std::shared_ptr<const Program> program_;
  std::shared_ptr<Shared> shared_;
  std::unique_ptr<Interpreter> master_;
};

/// Installs the binding modules into an interpreter tied to `shared` task
/// state (used internally by ScriptRuntime; exposed for tests).
void install_moongen_bindings(Interpreter& interp,
                              const std::shared_ptr<void>& shared_opaque);

}  // namespace moongen::script
