// Recursive-descent parser for the embedded Lua-subset language.
#pragma once

#include <memory>
#include <string_view>

#include "script/ast.hpp"

namespace moongen::script {

/// Parses a chunk; throws ScriptError on syntax errors.
std::shared_ptr<Program> parse(std::string_view source);

}  // namespace moongen::script
