#include "script/specializer.hpp"

#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "membuf/buf_array.hpp"
#include "membuf/pktbuf.hpp"
#include "script/interpreter.hpp"

namespace moongen::script {

namespace {

// Term values must be exactly representable integers small enough that any
// re-associated sum of a few of them stays exact (|sum| < 2^52).
constexpr double kMaxTermMagnitude = 4294967296.0;  // 2^32
constexpr double kMaxFieldValue = 4294967295.0;     // uint32 max

bool term_key_equal(const EntryTerm& a, const EntryTerm& b) {
  return a.src == b.src && a.index == b.index && a.slot == b.slot;
}

// ---------------------------------------------------------------------------
// Abstract values for the field-kernel builder
// ---------------------------------------------------------------------------

// Symbolic value of a register during the straight-line replay of a
// recorded body: either an affine numeric expression over entry-invariant
// terms / the loop index / at most one random draw, a view into the
// current packet's bytes (optionally narrowed to a field), or nil.
struct AbsVal {
  enum class Kind : std::uint8_t { kNum, kView, kNil };
  Kind kind = Kind::kNum;
  // kNum: k + Σ coef·term + idx_coef·loop_index + (draw >= 0 ? draw_term : 0).
  // The draw term is the full math.random(m) result (1 + r % m), coef +1.
  double k = 0.0;
  std::vector<EntryTerm> terms;
  int idx_coef = 0;
  int draw = -1;
  // kView
  bool has_field = false;
  core::FieldRef fbase;
};

AbsVal num_const(double k) {
  AbsVal v;
  v.k = k;
  return v;
}

AbsVal num_term(EntryTerm term) {
  AbsVal v;
  v.terms.push_back(term);
  return v;
}

// a + sign*b over the affine representation; fails (nullopt) when the
// combination leaves the supported form (two draws, negated draw).
std::optional<AbsVal> combine(const AbsVal& a, const AbsVal& b, int sign) {
  if (a.kind != AbsVal::Kind::kNum || b.kind != AbsVal::Kind::kNum) return std::nullopt;
  if (a.draw >= 0 && b.draw >= 0) return std::nullopt;
  if (b.draw >= 0 && sign < 0) return std::nullopt;  // draw coef must stay +1
  AbsVal out = a;
  out.k += sign * b.k;
  out.idx_coef += sign * b.idx_coef;
  if (b.draw >= 0) out.draw = b.draw;
  for (const EntryTerm& t : b.terms) {
    bool merged = false;
    for (auto& mine : out.terms) {
      if (term_key_equal(mine, t)) {
        const int c = mine.coef + sign * t.coef;
        if (c < -1 || c > 1) return std::nullopt;  // keep coefs in {-1, 0, +1}
        mine.coef = static_cast<std::int8_t>(c);
        merged = true;
        break;
      }
    }
    if (!merged) {
      EntryTerm nt = t;
      nt.coef = static_cast<std::int8_t>(sign * t.coef);
      out.terms.push_back(nt);
    }
  }
  std::erase_if(out.terms, [](const EntryTerm& t) { return t.coef == 0; });
  return out;
}

// Integral constant check for the exactness argument in the header.
bool exact_const(double k) { return std::floor(k) == k && std::fabs(k) <= 281474976710656.0; }

// ---------------------------------------------------------------------------
// Field-kernel builder
// ---------------------------------------------------------------------------

class FieldKernelBuilder {
 public:
  FieldKernelBuilder(const RecordedTrace& trace, Interpreter& host)
      : trace_(trace), host_(host) {}

  std::optional<FieldKernelSpec> build() {
    const Instr& anchor = trace_.anchor;
    // The recorded container must have been a packet array; the kernel
    // re-checks table identity at every entry.
    if (trace_.anchor_mt == nullptr || !trace_.anchor_mt->packet_array) return std::nullopt;
    if (anchor.c < 2) return std::nullopt;  // body cannot name the element
    iter_base_ = static_cast<std::uint32_t>(anchor.a);
    window_ = static_cast<std::uint32_t>(anchor.b);
    // Loop variables: w = 1-based index, w+1 = element, extras are nil.
    AbsVal idx;
    idx.idx_coef = 1;
    abs_[window_] = idx;
    AbsVal elem;
    elem.kind = AbsVal::Kind::kView;
    abs_[window_ + 1] = elem;
    for (std::int32_t i = 2; i < anchor.c; ++i) {
      AbsVal nil;
      nil.kind = AbsVal::Kind::kNil;
      abs_[window_ + static_cast<std::uint32_t>(i)] = nil;
    }

    const auto& body = trace_.body;
    if (body.empty()) return std::nullopt;
    for (std::size_t i = 0; i < body.size(); ++i) {
      const bool last = i + 1 == body.size();
      if (!step(body[i], last)) return std::nullopt;
    }
    if (!saw_back_edge_) return std::nullopt;
    if (spec_.actions.empty()) return std::nullopt;
    if (next_draw_consumed_ != draws_.size()) return std::nullopt;  // unused draw
    spec_.array_mt = trace_.anchor_mt;
    spec_.random_native = host_.math_random_native();
    spec_.ticks_per_packet = 1 + ticks_;  // anchor tick + body kCheckSteps
    return spec_;
  }

 private:
  std::optional<AbsVal> read(std::uint32_t r) {
    const auto it = abs_.find(r);
    if (it != abs_.end()) return it->second;
    // Registers below the iterator triple belong to enclosing scopes and
    // are invariant while the kernel runs (no script code executes).
    if (r < iter_base_) {
      EntryTerm t;
      t.src = EntryTerm::Src::kReg;
      t.index = static_cast<std::uint16_t>(r);
      return num_term(t);
    }
    return std::nullopt;  // f/s/ctrl or an undefined temp
  }

  bool write(std::uint32_t r, AbsVal v) {
    // Writes below the loop's registers would carry state across
    // iterations (or corrupt the iterator) — not a straight-line body.
    if (r < iter_base_ + 3) return false;
    abs_[r] = std::move(v);
    return true;
  }

  // Collects a guard term (dedup by identity).
  void note_guards(const EntryExpr& e) {
    for (const EntryTerm& t : e.terms) {
      bool present = false;
      for (const EntryTerm& g : spec_.guard_terms) {
        if (term_key_equal(g, t)) {
          present = true;
          break;
        }
      }
      if (!present) spec_.guard_terms.push_back(t);
    }
  }

  std::optional<EntryExpr> to_entry_expr(const AbsVal& v) {
    if (v.kind != AbsVal::Kind::kNum || v.idx_coef != 0 || v.draw >= 0) return std::nullopt;
    if (!exact_const(v.k)) return std::nullopt;
    EntryExpr e;
    e.k = v.k;
    e.terms = v.terms;
    return e;
  }

  bool emit_action(core::FieldRef field, const AbsVal& v) {
    if (v.kind != AbsVal::Kind::kNum) return false;
    if (!exact_const(v.k)) return false;
    ActionRecipe recipe;
    recipe.field = field;
    recipe.base.k = v.k;
    recipe.base.terms = v.terms;
    if (v.draw >= 0) {
      if (v.idx_coef != 0) return false;
      // Draws must be consumed in draw order, each exactly once, so the
      // kernel's per-action draws replay the recorded stream.
      if (static_cast<std::size_t>(v.draw) != next_draw_consumed_) return false;
      ++next_draw_consumed_;
      recipe.kind = core::FieldAction::Kind::kRandom;
      recipe.modulus = draws_[static_cast<std::size_t>(v.draw)];
      note_guards(recipe.modulus);
    } else if (v.idx_coef == 1) {
      recipe.kind = core::FieldAction::Kind::kCounter;
    } else if (v.idx_coef == 0) {
      recipe.kind = core::FieldAction::Kind::kConstant;
    } else {
      return false;
    }
    note_guards(recipe.base);
    spec_.actions.push_back(std::move(recipe));
    return true;
  }

  bool step(const RecordedInstr& ri, bool last) {
    const Instr& ins = ri.ins;
    const auto* consts = trace_.proto->consts.data();
    switch (ins.op) {
      case Op::kCheckStep:
        ++ticks_;
        return true;
      case Op::kLoadConst: {
        const Value& c = consts[ins.b];
        if (!c.is_number()) return false;
        return write(static_cast<std::uint32_t>(ins.a), num_const(c.as_number()));
      }
      case Op::kMove: {
        auto v = read(static_cast<std::uint32_t>(ins.b));
        if (!v) return false;
        return write(static_cast<std::uint32_t>(ins.a), std::move(*v));
      }
      case Op::kGetGlobal: {
        Value* slot = host_.global_slot_if_exists(consts[ins.b].as_string());
        if (slot == nullptr) return false;
        EntryTerm t;
        t.src = EntryTerm::Src::kGlobal;
        t.slot = slot;
        return write(static_cast<std::uint32_t>(ins.a), num_term(t));
      }
      case Op::kUpGet: {
        EntryTerm t;
        t.src = EntryTerm::Src::kUpval;
        t.index = static_cast<std::uint16_t>(ins.b);
        return write(static_cast<std::uint32_t>(ins.a), num_term(t));
      }
      case Op::kAdd:
      case Op::kSub: {
        if (!ri.numeric) return false;
        auto lhs = read(static_cast<std::uint32_t>(ins.b));
        auto rhs = read(static_cast<std::uint32_t>(ins.c));
        if (!lhs || !rhs) return false;
        auto out = combine(*lhs, *rhs, ins.op == Op::kAdd ? 1 : -1);
        if (!out) return false;
        return write(static_cast<std::uint32_t>(ins.a), std::move(*out));
      }
      case Op::kNeg: {
        if (!ri.numeric) return false;
        auto v = read(static_cast<std::uint32_t>(ins.b));
        if (!v) return false;
        auto out = combine(num_const(0.0), *v, -1);
        if (!out) return false;
        return write(static_cast<std::uint32_t>(ins.a), std::move(*out));
      }
      case Op::kCallGlobalField: {
        // Only the math.random(m) single-result shape folds into a draw.
        if (ri.callee == nullptr || ri.callee != host_.math_random_native()) return false;
        if (ri.callee->builtin != NativeFunction::Builtin::kMathRandom) return false;
        const std::int32_t nargs = ins.d & 0xffff;
        const std::int32_t nres = ins.d >> 16;
        if (nargs != 1 || nres != 1) return false;
        auto arg = read(static_cast<std::uint32_t>(ins.a) + 1);
        if (!arg) return false;
        auto modulus = to_entry_expr(*arg);
        if (!modulus) return false;
        spec_.random_ics.push_back(ins.ic);
        const int draw_id = static_cast<int>(draws_.size());
        draws_.push_back(std::move(*modulus));
        AbsVal result = num_const(1.0);  // math.random(m) = 1 + draw % m
        result.draw = draw_id;
        return write(static_cast<std::uint32_t>(ins.a), std::move(result));
      }
      case Op::kGetField:
      case Op::kMethodCall: {
        if (ri.mt == nullptr) return false;
        std::uint32_t obj_reg;
        std::int32_t nargs = 0;
        std::int32_t nres;
        if (ins.op == Op::kGetField) {
          obj_reg = static_cast<std::uint32_t>(ins.b);
          nres = 1;
        } else {
          const std::int32_t obj_hi = ins.d >= 0 ? (ins.d >> 16) : 0;
          nargs = obj_hi != 0 ? (ins.d & 0xffff) : ins.d;
          obj_reg = obj_hi != 0 ? static_cast<std::uint32_t>(obj_hi - 1)
                                : static_cast<std::uint32_t>(ins.a);
          nres = ins.c;
          if (nargs < 0) return false;  // multi-argument protocol
        }
        auto obj = read(obj_reg);
        if (!obj || obj->kind != AbsVal::Kind::kView) return false;
        switch (ri.tag.kind) {
          case TraceTag::Kind::kDeref: {
            if (nargs != 0 || nres > 1) return false;
            AbsVal view = *obj;
            if (ri.tag.carries_field) {
              view.has_field = true;
              view.fbase = core::FieldRef{ri.tag.offset, ri.tag.width};
            }
            if (nres == 1) return write(static_cast<std::uint32_t>(ins.a), std::move(view));
            if (nres < 0) {
              // Multi-result protocol (`local pkt = buf:getUdpPacket()`): the
              // VM parks the single view in the pending window until ADJUST
              // materializes it into registers.
              pending_.assign(1, std::move(view));
              pending_valid_ = true;
            }
            return true;
          }
          case TraceTag::Kind::kWrite: {
            if (nargs != 1 || nres > 1 || nres < 0) return false;
            core::FieldRef field;
            if (ri.tag.relative) {
              if (!obj->has_field) return false;
              field = obj->fbase;
            } else {
              field = core::FieldRef{ri.tag.offset, ri.tag.width};
            }
            auto arg = read(static_cast<std::uint32_t>(ins.a) + 1);
            if (!arg) return false;
            if (!emit_action(field, *arg)) return false;
            if (nres == 1) {
              AbsVal nil;
              nil.kind = AbsVal::Kind::kNil;
              return write(static_cast<std::uint32_t>(ins.a), nil);
            }
            return true;
          }
          case TraceTag::Kind::kNone:
            return false;  // opaque method
        }
        return false;
      }
      case Op::kAdjust: {
        // Materializes the pending multi-result window into regs [a, a+b),
        // padding with nil — mirrors the VM's kAdjust exactly.
        if (!pending_valid_) return false;
        for (std::int32_t i = 0; i < ins.b; ++i) {
          AbsVal v;
          if (static_cast<std::size_t>(i) < pending_.size()) {
            v = pending_[static_cast<std::size_t>(i)];
          } else {
            v.kind = AbsVal::Kind::kNil;
          }
          if (!write(static_cast<std::uint32_t>(ins.a + i), std::move(v))) return false;
        }
        pending_.clear();
        pending_valid_ = false;
        return true;
      }
      case Op::kJump:
        // Only the loop's own back edge, and only as the final instruction.
        saw_back_edge_ = last && static_cast<std::uint32_t>(ins.a) == trace_.anchor_pc;
        return saw_back_edge_;
      default:
        return false;
    }
  }

  const RecordedTrace& trace_;
  Interpreter& host_;
  std::uint32_t iter_base_ = 0;
  std::uint32_t window_ = 0;
  std::map<std::uint32_t, AbsVal> abs_;
  std::vector<AbsVal> pending_;
  bool pending_valid_ = false;
  std::vector<EntryExpr> draws_;
  std::size_t next_draw_consumed_ = 0;
  std::uint32_t ticks_ = 0;
  bool saw_back_edge_ = false;
  FieldKernelSpec spec_;
};

// ---------------------------------------------------------------------------
// Numeric-loop builder
// ---------------------------------------------------------------------------

constexpr std::size_t kMaxNumSlots = 64;
constexpr std::size_t kMaxGlobalSlots = 16;

class NumLoopBuilder {
 public:
  NumLoopBuilder(const RecordedTrace& trace, Interpreter& host) : trace_(trace), host_(host) {}

  std::optional<NumLoopSpec> build() {
    const Instr& anchor = trace_.anchor;
    const auto base = static_cast<std::uint16_t>(anchor.a);
    // The implicit loop test reads the triple: map as live-in up front.
    spec_.idx_slot = slot(base, /*write=*/false);
    spec_.stop_slot = slot(static_cast<std::uint16_t>(base + 1), false);
    spec_.step_slot = slot(static_cast<std::uint16_t>(base + 2), false);
    if (failed_) return std::nullopt;

    const auto& body = trace_.body;
    if (body.empty()) return std::nullopt;
    for (std::size_t i = 0; i < body.size(); ++i) {
      const bool last = i + 1 == body.size();
      const RecordedInstr& ri = body[i];
      if (last) {
        // The back edge must be the loop's own kForNext.
        if (ri.ins.op != Op::kForNext || ri.ins.a != anchor.a ||
            static_cast<std::uint32_t>(ri.ins.b) != trace_.anchor_pc) {
          return std::nullopt;
        }
        break;
      }
      if (!step(ri)) return std::nullopt;
    }
    if (failed_ || ticks_ == 0) return std::nullopt;
    spec_.ticks_per_iter = ticks_;
    return spec_;
  }

 private:
  std::uint8_t slot(std::uint16_t reg, bool write) {
    const auto it = reg2slot_.find(reg);
    if (it != reg2slot_.end()) return it->second;
    if (spec_.reg_slots.size() >= kMaxNumSlots) {
      failed_ = true;
      return 0;
    }
    const auto s = static_cast<std::uint8_t>(spec_.reg_slots.size());
    spec_.reg_slots.push_back(reg);
    spec_.reg_live_in.push_back(!write);  // first use is a read -> live-in
    reg2slot_[reg] = s;
    return s;
  }

  std::uint16_t global(Value* slot_ptr, bool write) {
    for (std::size_t i = 0; i < spec_.global_slots.size(); ++i) {
      if (spec_.global_slots[i] == slot_ptr) {
        if (write) spec_.global_written[i] = true;
        return static_cast<std::uint16_t>(i);
      }
    }
    if (spec_.global_slots.size() >= kMaxGlobalSlots) {
      failed_ = true;
      return 0;
    }
    spec_.global_slots.push_back(slot_ptr);
    spec_.global_live_in.push_back(!write);
    spec_.global_written.push_back(write);
    return static_cast<std::uint16_t>(spec_.global_slots.size() - 1);
  }

  bool step(const RecordedInstr& ri) {
    const Instr& ins = ri.ins;
    const auto* consts = trace_.proto->consts.data();
    NumOp op;
    switch (ins.op) {
      case Op::kCheckStep:
        ++ticks_;
        return true;
      case Op::kLoadConst: {
        const Value& c = consts[ins.b];
        if (!c.is_number()) return false;
        op.kind = NumOp::Kind::kLoadConst;
        op.imm = c.as_number();
        op.dst = slot(static_cast<std::uint16_t>(ins.a), true);
        break;
      }
      case Op::kMove:
        if (!ri.numeric) return false;  // generic copies any type; we can't
        op.kind = NumOp::Kind::kMove;
        op.a = slot(static_cast<std::uint16_t>(ins.b), false);
        op.dst = slot(static_cast<std::uint16_t>(ins.a), true);
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kPow: {
        if (!ri.numeric) return false;
        static constexpr NumOp::Kind kMap[] = {NumOp::Kind::kAdd, NumOp::Kind::kSub,
                                               NumOp::Kind::kMul, NumOp::Kind::kDiv,
                                               NumOp::Kind::kMod, NumOp::Kind::kPow};
        op.kind = kMap[static_cast<int>(ins.op) - static_cast<int>(Op::kAdd)];
        op.a = slot(static_cast<std::uint16_t>(ins.b), false);
        op.b = slot(static_cast<std::uint16_t>(ins.c), false);
        op.dst = slot(static_cast<std::uint16_t>(ins.a), true);
        break;
      }
      case Op::kNeg:
        if (!ri.numeric) return false;
        op.kind = NumOp::Kind::kNeg;
        op.a = slot(static_cast<std::uint16_t>(ins.b), false);
        op.dst = slot(static_cast<std::uint16_t>(ins.a), true);
        break;
      case Op::kGetGlobal: {
        Value* g = host_.global_slot_if_exists(consts[ins.b].as_string());
        if (g == nullptr) return false;
        op.kind = NumOp::Kind::kGlobalGet;
        op.gslot = global(g, false);
        op.dst = slot(static_cast<std::uint16_t>(ins.a), true);
        break;
      }
      case Op::kSetGlobal: {
        Value* g = host_.global_slot_if_exists(consts[ins.b].as_string());
        if (g == nullptr) return false;
        op.kind = NumOp::Kind::kGlobalSet;
        op.gslot = global(g, true);
        op.a = slot(static_cast<std::uint16_t>(ins.a), false);
        break;
      }
      default:
        return false;  // branches, calls, tables, strings: stay generic
    }
    if (failed_) return false;
    spec_.ops.push_back(op);
    return true;
  }

  const RecordedTrace& trace_;
  Interpreter& host_;
  std::map<std::uint16_t, std::uint8_t> reg2slot_;
  std::uint32_t ticks_ = 0;
  bool failed_ = false;
  NumLoopSpec spec_;
};

}  // namespace

// ---------------------------------------------------------------------------
// build_specialization
// ---------------------------------------------------------------------------

std::shared_ptr<const Specialization> build_specialization(RecordedTrace trace,
                                                           Interpreter& host) {
  auto spec = std::make_shared<Specialization>();
  if (trace.anchor.op == Op::kForInCall) {
    // The anchor observation: f must have been the ipairs iterator over a
    // packet array (the recorder only arms on that shape — re-checked at
    // every kernel entry anyway via the entry guards).
    FieldKernelBuilder builder(trace, host);
    auto built = builder.build();
    if (!built) return nullptr;
    spec->kind = Specialization::Kind::kFieldKernel;
    spec->field = std::move(*built);
  } else if (trace.anchor.op == Op::kForTest) {
    NumLoopBuilder builder(trace, host);
    auto built = builder.build();
    if (!built) return nullptr;
    spec->kind = Specialization::Kind::kNumLoop;
    spec->num = std::move(*built);
  } else {
    return nullptr;
  }
  spec->trace = std::move(trace);
  return spec;
}

// ---------------------------------------------------------------------------
// Field-kernel executor
// ---------------------------------------------------------------------------

namespace {

// Resolves one entry term to its current Value, or nullptr when the source
// is unavailable (upvalue index out of range for this closure).
const Value* term_value(const EntryTerm& t, const Value* regs,
                        const std::vector<std::shared_ptr<Cell>>& upvals) {
  switch (t.src) {
    case EntryTerm::Src::kReg:
      return &regs[t.index];
    case EntryTerm::Src::kGlobal:
      return t.slot;
    case EntryTerm::Src::kUpval:
      return t.index < upvals.size() ? &upvals[t.index]->v : nullptr;
  }
  return nullptr;
}

double eval_expr(const EntryExpr& e, const Value* regs,
                 const std::vector<std::shared_ptr<Cell>>& upvals) {
  double v = e.k;
  for (const EntryTerm& t : e.terms) {
    v += t.coef * term_value(t, regs, upvals)->as_number();
  }
  return v;
}

}  // namespace

void run_field_kernel(const Specialization& spec, const Instr& anchor, Value* regs,
                      ICEntry* ics, const std::vector<std::shared_ptr<Cell>>& upvals,
                      Interpreter& host) {
  const FieldKernelSpec& k = spec.field;

  // --- Entry guards: every recorded assumption, re-verified. -------------
  // Iterator protocol: the ipairs builtin over the recorded array type.
  const auto* nf = regs[anchor.a].native();
  if (nf == nullptr || (*nf)->builtin != NativeFunction::Builtin::kIpairsIter) return;
  const Value& container = regs[anchor.a + 1];
  if (!container.is_userdata()) return;
  const UserData& ud = *container.as_userdata();
  if (ud.methods() != k.array_mt || !k.array_mt->packet_array) return;
  auto* array = ud.as<membuf::BufArray>();
  // Control variable: integral position within the array.
  const Value& ctrl = regs[anchor.a + 2];
  if (!ctrl.is_number()) return;
  const double cd = ctrl.as_number();
  const std::size_t size = array->size();
  if (!(cd >= 0) || std::floor(cd) != cd || cd > static_cast<double>(size)) return;
  const auto next = static_cast<std::size_t>(cd) + 1;
  if (next > size) return;  // exhausted: the generic header exits the loop
  // Entry terms: integral numbers small enough for exact re-association.
  for (const EntryTerm& t : k.guard_terms) {
    const Value* v = term_value(t, regs, upvals);
    if (v == nullptr || !v->is_number()) return;
    const double x = v->as_number();
    if (std::floor(x) != x || std::fabs(x) > kMaxTermMagnitude) return;
  }
  // Folded math.random sites: each IC must still hit and still resolve to
  // the interpreter's math.random (version checks miss in-place
  // reassignment, so the native's identity is compared too).
  std::mt19937_64* rng = nullptr;
  if (!k.random_ics.empty()) {
    if (k.random_native == nullptr || k.random_native != host.math_random_native()) return;
    for (const std::uint16_t ic_index : k.random_ics) {
      const ICEntry& ric = ics[ic_index];
      if (ric.tbl == nullptr || ric.global_slot == nullptr || !ric.global_slot->is_table() ||
          ric.global_slot->as_table().get() != ric.tbl ||
          ric.tversion != ric.tbl->version()) {
        return;
      }
      const auto* cached = ric.tslot->native();
      if (cached == nullptr || cached->get() != k.random_native) return;
    }
    rng = host.math_rng();
    if (rng == nullptr) return;
  }

  // --- Bind the modifier program for this entry. --------------------------
  std::vector<core::FieldAction> actions;
  actions.reserve(k.actions.size());
  std::size_t count = size - next + 1;
  // Budget bound: only whole packets whose every tick fits; the remainder
  // (and the exhaustion throw) stays with the generic loop.
  const std::uint64_t limit = host.step_limit();
  if (limit != 0) {
    const std::uint64_t taken = host.steps_taken();
    if (taken >= limit) return;
    const std::uint64_t avail = (limit - taken) / k.ticks_per_packet;
    if (avail == 0) return;
    if (avail < count) count = static_cast<std::size_t>(avail);
  }
  for (const ActionRecipe& recipe : k.actions) {
    const double base = eval_expr(recipe.base, regs, upvals);
    core::FieldAction action;
    action.field = recipe.field;
    action.kind = recipe.kind;
    switch (recipe.kind) {
      case core::FieldAction::Kind::kConstant:
        // Out-of-range doubles would hit the generic path's cast behaviour;
        // don't try to replicate it, just stay generic.
        if (!(base >= 0.0) || base > kMaxFieldValue) return;
        action.value = static_cast<std::uint32_t>(base);
        break;
      case core::FieldAction::Kind::kRandom: {
        const double m = eval_expr(recipe.modulus, regs, upvals);
        if (!(m >= 1.0) || m > kMaxFieldValue) return;
        if (!(base >= 0.0) || base + (m - 1.0) > kMaxFieldValue) return;
        action.value = static_cast<std::uint32_t>(base);
        action.range = static_cast<std::uint32_t>(m);
        break;
      }
      case core::FieldAction::Kind::kCounter: {
        const double start = base + static_cast<double>(next);
        if (!(start >= 0.0) || start + static_cast<double>(count - 1) > kMaxFieldValue) return;
        action.value = static_cast<std::uint32_t>(start);
        action.range = 0;  // monotone within the kernel, like the generic add
        break;
      }
    }
    actions.push_back(action);
  }
  core::ModifierProgram program(std::move(actions));

  // --- Bulk apply. --------------------------------------------------------
  std::size_t done = 0;
  if (rng != nullptr) {
    auto draw = [rng] { return (*rng)(); };
    for (; done < count; ++done) {
      membuf::PktBuf* buf = (*array)[next - 1 + done];
      if (buf == nullptr) break;
      program.apply_with_rng(buf->data(), draw);
    }
  } else {
    auto no_draw = [] { return std::uint64_t{0}; };
    for (; done < count; ++done) {
      membuf::PktBuf* buf = (*array)[next - 1 + done];
      if (buf == nullptr) break;
      program.apply_with_rng(buf->data(), no_draw);
    }
  }
  if (done == 0) return;
  if (limit != 0) host.add_steps(static_cast<std::uint64_t>(done) * k.ticks_per_packet);
  // Hand the loop to the generic header as if it just finished packet
  // `next - 1 + done`: it performs the exhaust-exit (or the next
  // iteration) itself.
  regs[anchor.a + 2] = Value(static_cast<double>(next - 1 + done));
}

// ---------------------------------------------------------------------------
// Numeric-loop executor
// ---------------------------------------------------------------------------

void run_num_loop(const Specialization& spec, const Instr& anchor, Value* regs,
                  Interpreter& host) {
  (void)anchor;
  const NumLoopSpec& n = spec.num;
  // Entry guards: every live-in slot and global must be a number (the
  // generic loop would otherwise throw or leave arithmetic to
  // apply_binary_op — both stay on the generic path).
  for (std::size_t i = 0; i < n.reg_slots.size(); ++i) {
    if (n.reg_live_in[i] && !regs[n.reg_slots[i]].is_number()) return;
  }
  for (std::size_t i = 0; i < n.global_slots.size(); ++i) {
    if (n.global_live_in[i] && !n.global_slots[i]->is_number()) return;
  }
  std::uint64_t max_iters = ~std::uint64_t{0};
  const std::uint64_t limit = host.step_limit();
  if (limit != 0) {
    const std::uint64_t taken = host.steps_taken();
    if (taken >= limit) return;
    max_iters = (limit - taken) / n.ticks_per_iter;
    if (max_iters == 0) return;
  }

  double s[kMaxNumSlots];
  double g[kMaxGlobalSlots];
  for (std::size_t i = 0; i < n.reg_slots.size(); ++i) {
    s[i] = n.reg_live_in[i] ? regs[n.reg_slots[i]].as_number() : 0.0;
  }
  for (std::size_t i = 0; i < n.global_slots.size(); ++i) {
    g[i] = n.global_live_in[i] ? n.global_slots[i]->as_number() : 0.0;
  }

  const NumOp* ops = n.ops.data();
  const std::size_t num_ops = n.ops.size();
  std::uint64_t iters = 0;
  while (iters < max_iters) {
    const double i = s[n.idx_slot];
    const double stop = s[n.stop_slot];
    const double step = s[n.step_slot];
    if (!(step > 0 ? i <= stop : i >= stop)) break;  // the VM's exact test
    for (std::size_t p = 0; p < num_ops; ++p) {
      const NumOp& op = ops[p];
      switch (op.kind) {
        case NumOp::Kind::kLoadConst: s[op.dst] = op.imm; break;
        case NumOp::Kind::kMove: s[op.dst] = s[op.a]; break;
        case NumOp::Kind::kAdd: s[op.dst] = s[op.a] + s[op.b]; break;
        case NumOp::Kind::kSub: s[op.dst] = s[op.a] - s[op.b]; break;
        case NumOp::Kind::kMul: s[op.dst] = s[op.a] * s[op.b]; break;
        case NumOp::Kind::kDiv: s[op.dst] = s[op.a] / s[op.b]; break;
        case NumOp::Kind::kMod:
          s[op.dst] = s[op.a] - std::floor(s[op.a] / s[op.b]) * s[op.b];
          break;
        case NumOp::Kind::kPow: s[op.dst] = std::pow(s[op.a], s[op.b]); break;
        case NumOp::Kind::kNeg: s[op.dst] = -s[op.a]; break;
        case NumOp::Kind::kGlobalGet: s[op.dst] = g[op.gslot]; break;
        case NumOp::Kind::kGlobalSet: g[op.gslot] = s[op.a]; break;
      }
    }
    s[n.idx_slot] += s[n.step_slot];  // kForNext
    ++iters;
  }
  if (iters == 0) return;
  if (limit != 0) host.add_steps(iters * n.ticks_per_iter);
  // Write back: every mapped slot is either live-in (already correct) or
  // written every iteration, so the full write-back matches the generic
  // register state after the same iterations.
  for (std::size_t i = 0; i < n.reg_slots.size(); ++i) regs[n.reg_slots[i]] = Value(s[i]);
  for (std::size_t i = 0; i < n.global_slots.size(); ++i) {
    if (n.global_written[i]) *n.global_slots[i] = Value(g[i]);
  }
}

}  // namespace moongen::script
