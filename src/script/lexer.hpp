// Lexer for the embedded Lua-subset language.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace moongen::script {

enum class TokenType {
  // literals / identifiers
  kNumber,
  kString,
  kName,
  // keywords
  kAnd, kBreak, kDo, kElse, kElseif, kEnd, kFalse, kFor, kFunction, kIf, kIn,
  kLocal, kNil, kNot, kOr, kRepeat, kReturn, kThen, kTrue, kUntil, kWhile,
  // symbols
  kPlus, kMinus, kStar, kSlash, kPercent, kCaret, kHash,
  kEq, kNe, kLe, kGe, kLt, kGt, kAssign,
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemicolon, kColon, kComma, kDot, kConcat, kEllipsis,
  kEof,
};

struct Token {
  TokenType type;
  std::string text;   // identifier / string contents
  double number = 0;  // kNumber value
  int line = 1;
};

/// Tokenizes `source`; throws ScriptError on malformed input.
std::vector<Token> tokenize(std::string_view source);

/// Keyword/symbol name for diagnostics.
std::string token_type_name(TokenType type);

}  // namespace moongen::script
