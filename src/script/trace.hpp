// Hot-loop trace recording for the script VM.
//
// The paper's generator leans on LuaJIT, a tracing JIT: hot loops are
// recorded as linear instruction sequences with observed operand types,
// then compiled to specialized machine code guarded by type checks
// (Section 3.2). This module reproduces the recording half of that design
// for the bytecode VM: loop anchors (kForTest / kForInCall) carry hotness
// counters in their inline-cache slots, and once a loop is hot the VM
// records one full iteration — each executed instruction plus what the
// recorder observed about its operands (numeric-ness, receiver method
// tables and their trace tags, resolved native callees). The specializer
// (specializer.hpp) turns a recorded trace into a guarded superinstruction
// or a field-modifier kernel; the generic VM remains the semantics oracle
// that every guard falls back to.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "script/compiler.hpp"
#include "script/value.hpp"

namespace moongen::script {

struct ICEntry;

/// One executed instruction with the recorder's operand observations.
/// Observations are hints for the specializer, not guarantees: every
/// compiled kernel re-checks them with entry guards before running.
struct RecordedInstr {
  Instr ins;
  std::uint32_t pc = 0;
  /// Arithmetic / kMove: the value operands were numbers when recorded.
  bool numeric = false;
  /// kMethodCall / kGetField on userdata: the receiver's method table.
  const MethodTable* mt = nullptr;
  /// The receiver table's trace tag for the accessed name (kNone when the
  /// table declares no tag for it).
  TraceTag tag{};
  /// kCallGlobalField: the native the site resolved to when recorded.
  const NativeFunction* callee = nullptr;
};

/// A complete recorded loop iteration: the anchor instruction plus the
/// body up to (excluding) the back edge's re-arrival at the anchor.
struct RecordedTrace {
  std::shared_ptr<const Chunk> chunk;
  const FunctionProto* proto = nullptr;
  std::uint32_t anchor_pc = 0;
  Instr anchor{};
  /// kForInCall anchors: the iterated container's method table as observed
  /// when the trace finished (null when the container was not userdata).
  const MethodTable* anchor_mt = nullptr;
  std::vector<RecordedInstr> body;
};

/// Recording state machine driven by the VM's fetch hook. The recorder is
/// a passive container: the VM observes operands (it owns the register
/// file) and appends; the recorder tracks identity (which frame, which
/// anchor) and the abort/finalize boundaries.
class TraceRecorder {
 public:
  /// Traces longer than this abort: past ~10x the bench body there is no
  /// straight-line loop worth specializing, and the cap bounds the cost of
  /// recording pathological chunks.
  static constexpr std::size_t kMaxTraceLength = 96;

  [[nodiscard]] bool active() const { return active_; }

  /// Starts recording the loop anchored at `anchor_pc` in the frame whose
  /// register window starts at `frame_base`. `exit_pc` is the anchor's
  /// loop-exit target: reaching it before the back edge means the loop
  /// ended mid-recording (a soft abort). `entry` is the anchor's IC slot,
  /// where the result (or failure) is installed.
  void arm(std::shared_ptr<const Chunk> chunk, const FunctionProto* proto,
           std::size_t frame_base, std::uint32_t anchor_pc, const Instr& anchor,
           std::uint32_t exit_pc, ICEntry* entry) {
    trace_.chunk = std::move(chunk);
    trace_.proto = proto;
    trace_.anchor_pc = anchor_pc;
    trace_.anchor = anchor;
    trace_.body.clear();
    frame_base_ = frame_base;
    exit_pc_ = exit_pc;
    entry_ = entry;
    active_ = true;
  }

  void append(RecordedInstr ri) { trace_.body.push_back(std::move(ri)); }

  /// Hands the finished trace to the specializer and stops recording.
  RecordedTrace take() {
    active_ = false;
    return std::move(trace_);
  }

  void reset() {
    active_ = false;
    trace_ = RecordedTrace{};
    entry_ = nullptr;
  }

  [[nodiscard]] const FunctionProto* proto() const { return trace_.proto; }
  [[nodiscard]] std::size_t frame_base() const { return frame_base_; }
  [[nodiscard]] std::uint32_t anchor_pc() const { return trace_.anchor_pc; }
  [[nodiscard]] std::uint32_t exit_pc() const { return exit_pc_; }
  [[nodiscard]] std::size_t size() const { return trace_.body.size(); }
  [[nodiscard]] ICEntry* entry() const { return entry_; }

 private:
  RecordedTrace trace_;
  std::size_t frame_base_ = 0;
  std::uint32_t exit_pc_ = 0;
  ICEntry* entry_ = nullptr;
  bool active_ = false;
};

/// Human-readable listing of a recorded trace: anchor, body instructions
/// (decoded like disassemble()) and per-instruction observations
/// ([num], [deref ...], [write @off/w], [native f]).
std::string disassemble_trace(const RecordedTrace& trace);

}  // namespace moongen::script
