// Abstract syntax tree of the embedded language.
//
// The AST is immutable after parsing and shared by all interpreter
// instances: MoonGen's `launchLua` spawns an independent VM per slave task
// (paper Section 3.4), and all of them execute the same parsed chunk.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace moongen::script {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kNil, kTrue, kFalse, kNumber, kString,
  kName, kIndex, kCall, kMethodCall, kFunction, kBinary, kUnary, kTable,
};

struct FunctionDecl {
  std::string name;  // for diagnostics
  std::vector<std::string> params;
  Block body;
};

struct TableItem {
  // Exactly one of `name_key` / `expr_key` set for record entries; neither
  // for positional (array) entries.
  std::optional<std::string> name_key;
  ExprPtr expr_key;
  ExprPtr value;
};

struct Expr {
  ExprKind kind;
  int line = 0;

  // kNumber / kString
  double number = 0;
  std::string string;

  // kName
  std::string name;

  // kIndex: object[key]
  ExprPtr object;
  ExprPtr key;

  // kCall / kMethodCall
  ExprPtr callee;       // kCall
  std::string method;   // kMethodCall (object in `object`)
  std::vector<ExprPtr> args;

  // kFunction
  std::shared_ptr<FunctionDecl> function;

  // kBinary / kUnary (op encoded as lexer TokenType in `op`)
  int op = 0;
  ExprPtr lhs;
  ExprPtr rhs;  // also unary operand

  // kTable
  std::vector<TableItem> items;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  kLocal, kAssign, kExpr, kIf, kWhile, kRepeat, kNumericFor, kGenericFor,
  kFunctionDecl, kReturn, kBreak, kDo,
};

struct IfBranch {
  ExprPtr condition;
  Block body;
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  // kLocal
  std::vector<std::string> names;
  // kLocal / kAssign / kReturn / kGenericFor: value expressions
  std::vector<ExprPtr> exprs;
  // kAssign targets (kName or kIndex expressions)
  std::vector<ExprPtr> targets;

  // kExpr
  ExprPtr expr;

  // kIf
  std::vector<IfBranch> branches;
  Block else_body;
  bool has_else = false;

  // kWhile / kRepeat / loops / kDo
  ExprPtr condition;
  Block body;

  // kNumericFor
  std::string loop_var;
  ExprPtr for_start;
  ExprPtr for_stop;
  ExprPtr for_step;

  // kFunctionDecl: `function a.b.c(...)` / `local function f(...)`
  std::vector<std::string> func_path;
  bool is_local_function = false;
  std::shared_ptr<FunctionDecl> function;
};

struct Program {
  Block block;
};

}  // namespace moongen::script
