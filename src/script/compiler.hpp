// Bytecode compiler for the embedded Lua-subset language.
//
// The paper's generator owes its speed to LuaJIT: userscript packet loops
// compile to machine code instead of walking a syntax tree (Sections 3.2,
// 5.1). This module reproduces the cheap half of that idea — a one-pass
// lowering of the AST to flat register bytecode with resolved local /
// upvalue slots, folded constants and inline-cache slots at global, field
// and method-call sites. The register VM executing it lives in vm.hpp.
//
// Determinism contract: for programs that declare names before use (all of
// the repo's scripts and the fuzz corpus), the compiled program is
// observably identical to the tree-walking interpreter — same values, same
// side-effect order, same error messages, same statement-budget counting.
// See DESIGN.md section 11 for the one documented divergence
// (use-before-declaration captures resolve lexically here, dynamically in
// the tree-walker).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "script/ast.hpp"
#include "script/value.hpp"

namespace moongen::script {

/// Register-machine opcodes. Operands a/b/c/d are registers, constant
/// indices, cell/upvalue indices or jump targets depending on the op; `ic`
/// indexes the per-interpreter inline-cache array.
enum class Op : std::uint8_t {
  kLoadConst,   // r[a] = consts[b]
  kLoadNil,     // r[a] = nil
  kLoadBool,    // r[a] = (b != 0)
  kMove,        // r[a] = r[b]
  kGetGlobal,   // r[a] = globals[consts[b]]          (ic: cached slot)
  kSetGlobal,   // globals[consts[b]] = r[a]          (ic: cached slot)
  kNewCell,     // cells[a] = fresh boxed nil
  kCellGet,     // r[a] = *cells[b]
  kCellSet,     // *cells[a] = r[b]
  kUpGet,       // r[a] = *upvals[b]
  kUpSet,       // *upvals[a] = r[b]
  kAdd,         // r[a] = r[b] + r[c]   (binary ops fall back to the
  kSub,         //  interpreter's shared apply_binary_op for non-numbers,
  kMul,         //  keeping error messages and string compares identical)
  kDiv,
  kMod,
  kPow,
  kConcat,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kNot,         // r[a] = not r[b]
  kNeg,         // r[a] = -r[b]
  kLen,         // r[a] = #r[b]
  kJump,        // pc = a
  kJumpIfFalse, // if not truthy(r[a]) pc = b
  kJumpIfTrue,  // if truthy(r[a]) pc = b
  kJumpIfNil,   // if r[a] == nil pc = b
  kGetIndex,    // r[a] = r[b][r[c]]
  kGetField,    // r[a] = r[b][consts[c]]             (ic: userdata method/hook)
  kSetIndex,    // r[a][r[b]] = r[c]                  (assignment-target rules)
  kNewTable,    // r[a] = {}
  kCheckKey,    // constructor key check: r[a] must be number or string
  kTableSet,    // r[a][r[b]] = r[c]                  (constructor rules)
  kCall,        // call r[a](r[a+1..]); b: nargs enc, c: nres enc
  kMethodCall,  // r[a]:consts[b](r[a+1..]); c: nres, d: nargs (ic: Method*).
                // When d >= 0 and (d >> 16) != 0 the object is instead read
                // in place from register (d >> 16) - 1 — a plain local's
                // home, which nothing can overwrite mid-call — and nargs is
                // d & 0xffff; this skips the per-call object copy.
  kCallGlobalField,  // call globals[consts[b]][consts[c]](r[a+1..]);
                     // d: nargs | nres << 16 (both fixed). Fused direct-call
                     // site for `G.f(...)` with literal/name-only args; the
                     // IC guards (global slot, Table*, version) so the hit
                     // path calls straight out of the table slot with no
                     // Value copies. Emitted only when resolving the callee
                     // at call time is unobservable (see compile_call).
  kForInCall,   // fused generic-for iteration header: budget tick, protocol
                // call r[b..b+c) = r[a](r[a+1], r[a+2]) without consuming the
                // persistent f/s/ctrl registers (kCall would: its results
                // overwrite its callee window), then pc = d when r[b] is nil,
                // else ctrl r[a+2] = r[b]. (ic: trace anchor — hotness
                // counter + installed field-kernel specialization)
  kReturn,      // return r[a..]; b: count enc
  kAdjust,      // r[a..a+b) = pending results, padded with nil
  kClosure,     // r[a] = closure of protos[b]
  kToNum,       // r[a] = number(r[a]) — numeric-for bound conversion
  kForPrep,     // validate step r[a+2] != 0
  kForTest,     // if loop (i=r[a], stop=r[a+1], step=r[a+2]) done: pc = b
                // (ic: trace anchor — hotness counter + installed
                // numeric-loop specialization)
  kForNext,     // r[a] += r[a+2]; pc = b
  kPathMid,     // r[a] = checked-table r[b][consts[c]] (function a.b.c decl)
  kPathSet,     // checked-table r[a][consts[b]] = r[c]
  kCheckStep,   // statement budget tick (mirrors the interpreter's count)
};

/// nargs encoding for kCall / kMethodCall / kReturn: n >= 0 means exactly
/// n fixed values; n < 0 means (-n - 1) fixed values followed by the
/// pending multi-result buffer of the preceding call.
inline constexpr std::int32_t kMultiValues = -1;

struct Instr {
  Op op;
  std::uint16_t ic = 0;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t c = 0;
  std::int32_t d = 0;
  std::int32_t line = 0;
};

/// How a closure obtains one captured variable when it is created: either
/// a cell of the enclosing frame or an upvalue of the enclosing closure.
struct UpvalDesc {
  bool from_parent_cell = true;
  std::uint32_t index = 0;
};

struct FunctionProto {
  std::string name;          // for diagnostics and wrapper naming
  std::uint32_t num_params = 0;
  std::uint32_t num_regs = 0;   // frame size (params + locals + temps)
  std::uint32_t num_cells = 0;  // boxed locals captured by nested closures
  std::vector<Instr> code;
  std::vector<Value> consts;
  std::vector<UpvalDesc> upvals;
};

/// A compiled program. Immutable after compile_program returns; the
/// mutable inline-cache array lives in each interpreter's Vm (sized
/// num_ics), so a chunk never carries cross-thread state.
struct Chunk {
  std::vector<FunctionProto> protos;
  std::uint32_t top_level = 0;  // proto executing the main block
  std::uint32_t num_ics = 0;
};

/// Lowers a parsed program to bytecode. Pure function of the AST: cheap
/// enough (microseconds) that every interpreter compiles its own copy.
std::shared_ptr<const Chunk> compile_program(const Program& program);

/// Mnemonic for an opcode ("ADD", "GFCALL", ...). Shared by the chunk
/// disassembler and the recorded-trace listings in trace.cpp.
const char* op_name(Op op);

/// Renders one instruction the way disassemble() does (decoded operands,
/// no pc prefix). `proto` supplies the constant pool for name operands.
std::string disassemble_instr(const FunctionProto& proto, const Instr& ins);

/// Human-readable disassembly (tests / debugging). Fused call sites
/// (GFCALL/MCALL/FORINCALL) and constant/global operands are decoded to
/// names and register ranges instead of raw indices; instructions with an
/// inline-cache slot show it as a trailing [ic N].
std::string disassemble(const Chunk& chunk);

}  // namespace moongen::script
