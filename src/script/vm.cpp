#include "script/vm.hpp"

#include <algorithm>
#include <cmath>

#include "script/interpreter.hpp"
#include "script/lexer.hpp"
#include "script/specializer.hpp"

namespace moongen::script {

namespace {

int token_of(Op op) {
  switch (op) {
    case Op::kAdd: return static_cast<int>(TokenType::kPlus);
    case Op::kSub: return static_cast<int>(TokenType::kMinus);
    case Op::kMul: return static_cast<int>(TokenType::kStar);
    case Op::kDiv: return static_cast<int>(TokenType::kSlash);
    case Op::kMod: return static_cast<int>(TokenType::kPercent);
    case Op::kPow: return static_cast<int>(TokenType::kCaret);
    case Op::kConcat: return static_cast<int>(TokenType::kConcat);
    case Op::kLt: return static_cast<int>(TokenType::kLt);
    case Op::kLe: return static_cast<int>(TokenType::kLe);
    case Op::kGt: return static_cast<int>(TokenType::kGt);
    case Op::kGe: return static_cast<int>(TokenType::kGe);
    default: return 0;
  }
}

}  // namespace

void Vm::ensure_stack(std::size_t n) {
  if (stack_.size() < n) stack_.resize(std::max(n, stack_.size() * 2 + 64));
}

std::vector<Value>& Vm::acquire_scratch() {
  if (scratch_depth_ == scratch_.size()) scratch_.emplace_back();
  return scratch_[scratch_depth_++];
}

/// RAII window over one depth-level of the argument scratch pool.
struct ArgScratch {
  explicit ArgScratch(Vm& vm) : vm_(vm), args(vm.acquire_scratch()) {}
  ~ArgScratch() {
    args.clear();
    --vm_.scratch_depth_;
  }
  ArgScratch(const ArgScratch&) = delete;
  ArgScratch& operator=(const ArgScratch&) = delete;

  Vm& vm_;
  std::vector<Value>& args;
};

ICEntry* Vm::ic_table(const Chunk* chunk) {
  auto& vec = ics_[chunk];
  if (vec.size() < chunk->num_ics) vec.resize(chunk->num_ics);
  return vec.data();
}

void Vm::run_toplevel(const std::shared_ptr<const Chunk>& chunk) {
  auto closure = std::make_shared<VmClosure>();
  closure->chunk = chunk;
  closure->proto_index = chunk->top_level;
  std::vector<Value> no_args;
  (void)call_closure(closure, no_args);
}

std::vector<Value> Vm::call_closure(const std::shared_ptr<VmClosure>& closure,
                                    std::vector<Value>& args) {
  const Chunk* chunk = closure->chunk.get();
  const FunctionProto& proto = chunk->protos[closure->proto_index];

  Frame frame;
  frame.chunk = closure->chunk;
  frame.proto = &proto;
  frame.upvals = &closure->upvals;
  frame.ics = ic_table(chunk);
  frame.base = top_;
  ensure_stack(top_ + proto.num_regs);
  top_ += proto.num_regs;

  // Clear the window and restore the watermark on every exit path, so a
  // ScriptError unwinding through nested frames releases their values.
  struct StackGuard {
    Vm& vm;
    std::size_t base;
    std::uint32_t nregs;
    ~StackGuard() {
      // The recording frame exiting (return, break-to-return, or an error
      // unwinding) ends its loop mid-trace: soft abort, retry later.
      if (vm.recording_ && vm.recorder_.frame_base() == base) vm.abort_recording(false);
      for (std::uint32_t i = 0; i < nregs; ++i) vm.stack_[base + i] = Value();
      vm.top_ = base;
    }
  } guard{*this, frame.base, proto.num_regs};

  // Interpreter convention: extra args ignored, missing padded with nil
  // (slots above the previous watermark are already nil).
  const std::size_t ncopy = std::min<std::size_t>(args.size(), proto.num_params);
  for (std::size_t i = 0; i < ncopy; ++i) stack_[frame.base + i] = args[i];
  frame.cells.resize(proto.num_cells);

  return execute(frame);
}

std::vector<Value> Vm::do_call(const Value& callee, std::vector<Value>& args, int line) {
  if (const auto* nf = callee.native()) {
    auto& fn = **nf;
    if (fn.compiled) {
      // Compiled-to-compiled fast path: skip the std::function wrapper.
      auto closure = std::static_pointer_cast<VmClosure>(fn.compiled);
      return call_closure(closure, args);
    }
    return fn.fn(host_, args);
  }
  if (callee.script_fn() != nullptr) return host_.call(callee, std::move(args), line);
  throw ScriptError("attempt to call a " + callee.type_name() + " value", line);
}

std::vector<Value> Vm::execute(Frame& frame) {
  const Instr* code = frame.proto->code.data();
  const Value* consts = frame.proto->consts.data();
  std::size_t pc = 0;
  // Multi-result buffer of the last kCall/kMethodCall with nres ==
  // kMultiValues; consumed by the immediately following consumer.
  std::vector<Value> pending;

  const auto reg = [&](std::int32_t i) -> Value& {
    return stack_[frame.base + static_cast<std::size_t>(i)];
  };

  // Fills the argument vector for kCall/kMethodCall. enc >= 0: that many
  // registers after `base`; enc < 0: (-enc - 1) registers plus `pending`.
  const auto gather_args = [&](std::vector<Value>& args, std::int32_t base, std::int32_t enc) {
    const std::int32_t fixed = enc >= 0 ? enc : -enc - 1;
    args.reserve(static_cast<std::size_t>(fixed) + (enc < 0 ? pending.size() : 0));
    for (std::int32_t i = 0; i < fixed; ++i) args.push_back(reg(base + 1 + i));
    if (enc < 0) {
      for (auto& v : pending) args.push_back(std::move(v));
      pending.clear();
    }
  };

  const auto store_results = [&](std::int32_t base, std::int32_t nres,
                                 std::vector<Value>&& results) {
    if (nres == kMultiValues) {
      pending = std::move(results);
      return;
    }
    for (std::int32_t i = 0; i < nres; ++i) {
      reg(base + i) = static_cast<std::size_t>(i) < results.size() ? std::move(results[i])
                                                                   : Value();
    }
  };

  for (;;) {
    const auto ins_pc = static_cast<std::uint32_t>(pc);
    const Instr& ins = code[pc++];
    if (recording_) record_step(frame, ins_pc, ins);
    switch (ins.op) {
      case Op::kLoadConst: reg(ins.a) = consts[ins.b]; break;
      case Op::kLoadNil: reg(ins.a) = Value(); break;
      case Op::kLoadBool: reg(ins.a) = Value(ins.b != 0); break;
      case Op::kMove: reg(ins.a) = reg(ins.b); break;

      case Op::kGetGlobal: {
        ICEntry& ic = frame.ics[ins.ic];
        if (ic.global_slot != nullptr) {
          reg(ins.a) = *ic.global_slot;
          break;
        }
        // Miss on an undefined global is not cached: the name may be
        // defined later and must then become visible (interpreter reads
        // the environment on every access).
        if (Value* slot = host_.globals_->find_local(consts[ins.b].as_string())) {
          ic.global_slot = slot;
          reg(ins.a) = *slot;
        } else {
          reg(ins.a) = Value();
        }
        break;
      }
      case Op::kSetGlobal: {
        ICEntry& ic = frame.ics[ins.ic];
        if (ic.global_slot == nullptr)
          ic.global_slot = &host_.globals_->slot(consts[ins.b].as_string());
        *ic.global_slot = reg(ins.a);
        break;
      }

      case Op::kNewCell: frame.cells[static_cast<std::size_t>(ins.a)] = std::make_shared<Cell>(); break;
      case Op::kCellGet: reg(ins.a) = frame.cells[static_cast<std::size_t>(ins.b)]->v; break;
      case Op::kCellSet: frame.cells[static_cast<std::size_t>(ins.a)]->v = reg(ins.b); break;
      case Op::kUpGet: reg(ins.a) = (*frame.upvals)[static_cast<std::size_t>(ins.b)]->v; break;
      case Op::kUpSet: (*frame.upvals)[static_cast<std::size_t>(ins.a)]->v = reg(ins.b); break;

      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kPow: {
        const Value& lhs = reg(ins.b);
        const Value& rhs = reg(ins.c);
        if (lhs.is_number() && rhs.is_number()) {
          const double a = lhs.as_number();
          const double b = rhs.as_number();
          double out = 0;
          switch (ins.op) {
            case Op::kAdd: out = a + b; break;
            case Op::kSub: out = a - b; break;
            case Op::kMul: out = a * b; break;
            case Op::kDiv: out = a / b; break;
            case Op::kMod: out = a - std::floor(a / b) * b; break;  // Lua modulo
            default: out = std::pow(a, b); break;
          }
          reg(ins.a) = Value(out);
        } else {
          Value out = apply_binary_op(token_of(ins.op), lhs, rhs, ins.line);
          reg(ins.a) = std::move(out);
        }
        break;
      }
      case Op::kConcat: {
        Value out = apply_binary_op(token_of(ins.op), reg(ins.b), reg(ins.c), ins.line);
        reg(ins.a) = std::move(out);
        break;
      }
      case Op::kEq: reg(ins.a) = Value(reg(ins.b).equals(reg(ins.c))); break;
      case Op::kNe: reg(ins.a) = Value(!reg(ins.b).equals(reg(ins.c))); break;
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe: {
        const Value& lhs = reg(ins.b);
        const Value& rhs = reg(ins.c);
        if (lhs.is_number() && rhs.is_number()) {
          const double a = lhs.as_number();
          const double b = rhs.as_number();
          bool out = false;
          switch (ins.op) {
            case Op::kLt: out = a < b; break;
            case Op::kLe: out = a <= b; break;
            case Op::kGt: out = a > b; break;
            default: out = a >= b; break;
          }
          reg(ins.a) = Value(out);
        } else {
          Value out = apply_binary_op(token_of(ins.op), lhs, rhs, ins.line);
          reg(ins.a) = std::move(out);
        }
        break;
      }

      case Op::kNot: reg(ins.a) = Value(!reg(ins.b).truthy()); break;
      case Op::kNeg: {
        const Value& v = reg(ins.b);
        if (!v.is_number())
          throw ScriptError("attempt to negate a " + v.type_name(), ins.line);
        reg(ins.a) = Value(-v.as_number());
        break;
      }
      case Op::kLen: {
        const Value& v = reg(ins.b);
        if (v.is_string()) {
          reg(ins.a) = Value(static_cast<double>(v.as_string().size()));
        } else if (v.is_table()) {
          reg(ins.a) = Value(static_cast<double>(v.as_table()->array_size()));
        } else if (v.is_userdata()) {
          auto& ud = *v.as_userdata();
          const auto it = ud.methods()->methods.find("__len");
          if (it == ud.methods()->methods.end())
            throw ScriptError("attempt to get length of a " + v.type_name(), ins.line);
          std::vector<Value> no_args;
          auto r = it->second(host_, ud, no_args);
          reg(ins.a) = r.empty() ? Value() : std::move(r[0]);
        } else {
          throw ScriptError("attempt to get length of a " + v.type_name(), ins.line);
        }
        break;
      }

      case Op::kJump: pc = static_cast<std::size_t>(ins.a); break;
      case Op::kJumpIfFalse:
        if (!reg(ins.a).truthy()) pc = static_cast<std::size_t>(ins.b);
        break;
      case Op::kJumpIfTrue:
        if (reg(ins.a).truthy()) pc = static_cast<std::size_t>(ins.b);
        break;
      case Op::kJumpIfNil:
        if (reg(ins.a).is_nil()) pc = static_cast<std::size_t>(ins.b);
        break;

      case Op::kGetIndex: {
        const Value& obj = reg(ins.b);
        const Value& key = reg(ins.c);
        if (obj.is_table()) {
          if (key.is_number()) {
            reg(ins.a) = obj.as_table()->get(Table::Key{key.as_number()});
          } else if (key.is_string()) {
            reg(ins.a) = obj.as_table()->get(Table::Key{key.as_string()});
          } else {
            reg(ins.a) = Value();  // invalid key type reads as nil
          }
          break;
        }
        Value out = host_.index_value(obj, key, ins.line);
        reg(ins.a) = std::move(out);
        break;
      }
      case Op::kGetField: {
        const Value& obj = reg(ins.b);
        const std::string& name = consts[ins.c].as_string();
        if (obj.is_table()) {
          const Table* t = obj.as_table().get();
          ICEntry& ic = frame.ics[ins.ic];
          if (ic.tbl == t && ic.tversion == t->version()) {
            reg(ins.a) = *ic.tslot;
            break;
          }
          if (const Value* slot = t->find_slot(Table::Key{name})) {
            ic.tbl = t;
            ic.tversion = t->version();
            ic.tslot = slot;
            reg(ins.a) = *slot;
          } else {
            // Absent keys are not cached: a later insertion must become
            // visible, and insertions do not bump the version token.
            reg(ins.a) = Value();
          }
          break;
        }
        if (obj.is_userdata()) {
          auto self = obj.as_userdata();
          auto& ud = *self;
          ICEntry& ic = frame.ics[ins.ic];
          if (ic.mt != ud.methods()) {
            const MethodTable* mt = ud.methods();
            const auto it = mt->methods.find(name);
            if (it != mt->methods.end()) {
              ic.mt = mt;
              ic.method = &it->second;
              ic.kind = ICEntry::FieldKind::kMethod;
            } else if (mt->index) {
              ic.mt = mt;
              ic.method = nullptr;
              ic.kind = ICEntry::FieldKind::kHook;
            } else {
              throw ScriptError("cannot index " + ud.type_name() + " with '" + name + "'",
                                ins.line);
            }
          }
          if (ic.kind == ICEntry::FieldKind::kMethod) {
            // A fresh wrapper per access, like the interpreter: obj.m is
            // a new function value every time (obj.m ~= obj.m).
            const Method* method = ic.method;
            reg(ins.a) = make_native(name, [method, self](Interpreter& interp,
                                                          std::vector<Value>& call_args) {
              return (*method)(interp, *self, call_args);
            });
          } else {
            Value out = ic.mt->index(host_, ud, name);
            reg(ins.a) = std::move(out);
          }
          break;
        }
        Value out = host_.index_value(obj, consts[ins.c], ins.line);
        reg(ins.a) = std::move(out);
        break;
      }
      case Op::kSetIndex: {
        const Value& obj = reg(ins.a);
        const Value& key = reg(ins.b);
        if (obj.is_table()) {
          if (key.is_number()) {
            obj.as_table()->set(Table::Key{key.as_number()}, reg(ins.c));
          } else if (key.is_string()) {
            obj.as_table()->set(Table::Key{key.as_string()}, reg(ins.c));
          } else {
            throw ScriptError("invalid table key", ins.line);
          }
          break;
        }
        throw ScriptError("attempt to index a " + obj.type_name() + " value", ins.line);
      }

      case Op::kNewTable: reg(ins.a) = Value(std::make_shared<Table>()); break;
      case Op::kCheckKey: {
        const Value& key = reg(ins.a);
        if (!key.is_number() && !key.is_string())
          throw ScriptError("table key must be a number or string", ins.line);
        break;
      }
      case Op::kTableSet: {
        const Value& key = reg(ins.b);
        auto table = reg(ins.a).as_table();
        if (key.is_number()) {
          table->set(Table::Key{key.as_number()}, reg(ins.c));
        } else {
          table->set(Table::Key{key.as_string()}, reg(ins.c));
        }
        break;
      }

      case Op::kCall: {
        // Direct-call site for the stateless ipairs iterator: open-coded
        // with identical semantics, skipping the per-element argument and
        // result vectors and the std::function dispatch.
        if (ins.b == 2 && ins.c >= 0) {
          if (const auto* nf = reg(ins.a).native();
              nf != nullptr && (*nf)->builtin == NativeFunction::Builtin::kIpairsIter) {
            const Value& ctrl = reg(ins.a + 2);
            const double next = ctrl.is_number() ? ctrl.as_number() + 1 : 1;
            Value element = host_.index_for_iteration(reg(ins.a + 1), next);
            // The iterator returns {nil} at the end, {next, element} else.
            const bool done = element.is_nil();
            if (ins.c >= 1) reg(ins.a) = done ? Value() : Value(next);
            if (ins.c >= 2) reg(ins.a + 1) = done ? Value() : std::move(element);
            for (std::int32_t i = 2; i < ins.c; ++i) reg(ins.a + i) = Value();
            break;
          }
        }
        ArgScratch scratch(*this);
        gather_args(scratch.args, ins.a, ins.b);
        // Move out: the callee slot is a fresh temp that the results (or
        // nothing) overwrite, and nested calls may reallocate the stack.
        const Value callee = std::move(reg(ins.a));
        if (ins.c >= 0) {
          // Fixed result count: truncation/padding makes the single-result
          // protocol exact, so natives that provide it skip the result
          // vector entirely.
          if (const auto* nf = callee.native();
              nf != nullptr && (*nf)->fn1 && !(*nf)->compiled) {
            Value r = (*nf)->fn1(host_, scratch.args);
            if (ins.c >= 1) reg(ins.a) = std::move(r);
            for (std::int32_t i = 1; i < ins.c; ++i) reg(ins.a + i) = Value();
            break;
          }
        }
        std::vector<Value> results = do_call(callee, scratch.args, ins.line);
        store_results(ins.a, ins.c, std::move(results));
        break;
      }
      case Op::kMethodCall: {
        // d encoding: high half (when set) names the object's home register
        // so a plain local needn't be copied into the call window. The
        // home register cannot change mid-call (only this frame's code,
        // which is suspended, writes plain locals), and the Value there
        // keeps the object alive across nested stack reallocation.
        const std::int32_t obj_hi = ins.d >= 0 ? (ins.d >> 16) : 0;
        const std::int32_t nargs = obj_hi != 0 ? (ins.d & 0xffff) : ins.d;
        const std::string& name = consts[ins.b].as_string();
        if (nargs == 0 && ins.c >= 0) {
          // Zero-arg single-result fast path: no scratch vector at all. The
          // object Value (home register or call window) owns the UserData,
          // which outlives any stack reallocation under the call.
          const Value& object = obj_hi != 0 ? reg(obj_hi - 1) : reg(ins.a);
          if (object.is_userdata()) {
            auto& ud = *object.as_userdata();
            ICEntry& ic = frame.ics[ins.ic];
            if (ic.mt != ud.methods()) {
              const auto it = ud.methods()->methods.find(name);
              if (it == ud.methods()->methods.end())
                throw ScriptError("no method '" + name + "' on " + ud.type_name(), ins.line);
              ic.mt = ud.methods();
              ic.method = &it->second;
              const auto it1 = ud.methods()->methods1.find(name);
              ic.method1 = it1 != ud.methods()->methods1.end() ? &it1->second : nullptr;
              ic.kind = ICEntry::FieldKind::kMethod;
            }
            if (ic.method1 != nullptr) {
              Value r = (*ic.method1)(host_, ud, no_args_);
              if (ins.c >= 1) reg(ins.a) = std::move(r);
              for (std::int32_t i = 1; i < ins.c; ++i) reg(ins.a + i) = Value();
              break;
            }
          }
        }
        ArgScratch scratch(*this);
        auto& args = scratch.args;
        gather_args(args, ins.a, nargs);
        const Value object_store =
            obj_hi != 0 ? Value() : std::move(reg(ins.a));  // fresh temp, see kCall
        const Value& object = obj_hi != 0 ? reg(obj_hi - 1) : object_store;
        std::vector<Value> results;
        if (object.is_userdata()) {
          auto& ud = *object.as_userdata();
          ICEntry& ic = frame.ics[ins.ic];
          if (ic.mt != ud.methods()) {
            const auto it = ud.methods()->methods.find(name);
            if (it == ud.methods()->methods.end())
              throw ScriptError("no method '" + name + "' on " + ud.type_name(), ins.line);
            ic.mt = ud.methods();
            ic.method = &it->second;
            const auto it1 = ud.methods()->methods1.find(name);
            ic.method1 = it1 != ud.methods()->methods1.end() ? &it1->second : nullptr;
            ic.kind = ICEntry::FieldKind::kMethod;
          }
          if (ins.c >= 0 && ic.method1 != nullptr) {
            // Single-result fast path, exact at fixed result counts.
            Value r = (*ic.method1)(host_, ud, args);
            if (ins.c >= 1) reg(ins.a) = std::move(r);
            for (std::int32_t i = 1; i < ins.c; ++i) reg(ins.a + i) = Value();
            break;
          }
          results = (*ic.method)(host_, ud, args);
        } else if (object.is_table()) {
          const Value fn = object.as_table()->get(Table::Key{name});
          args.insert(args.begin(), object);  // self
          results = host_.call(fn, std::move(args), ins.line);
        } else {
          throw ScriptError(
              "attempt to call method '" + name + "' on a " + object.type_name() + " value",
              ins.line);
        }
        store_results(ins.a, ins.c, std::move(results));
        break;
      }
      case Op::kCallGlobalField: {
        const std::int32_t nargs = ins.d & 0xffff;
        const std::int32_t nres = ins.d >> 16;
        ICEntry& ic = frame.ics[ins.ic];
        const Value* callee_slot = nullptr;
        if (ic.tbl != nullptr && ic.global_slot != nullptr && ic.global_slot->is_table() &&
            ic.global_slot->as_table().get() == ic.tbl && ic.tversion == ic.tbl->version()) {
          // Hit: the global still names the same unmodified table; the
          // cached node pointer is valid and reflects in-place reassignment
          // of the field (assignment does not move std::map nodes).
          callee_slot = ic.tslot;
        }
        Value resolved;  // keeps a slow-path callee alive across the call
        if (callee_slot == nullptr) {
          // Miss: resolve exactly like kGetGlobal + kGetField and refresh.
          ic.tbl = nullptr;
          if (ic.global_slot == nullptr) {
            ic.global_slot = host_.globals_->find_local(consts[ins.b].as_string());
          }
          const Value global = ic.global_slot != nullptr ? *ic.global_slot : Value();
          if (global.is_table()) {
            const Table* t = global.as_table().get();
            if (const Value* slot = t->find_slot(Table::Key{consts[ins.c].as_string()})) {
              ic.tbl = t;
              ic.tversion = t->version();
              ic.tslot = slot;
              callee_slot = slot;
            }  // absent fields are not cached (insertion keeps the version)
          } else {
            // Non-table global: same behaviour (and errors) as kGetField.
            resolved = host_.index_value(global, consts[ins.c], ins.line);
            callee_slot = &resolved;
          }
          if (callee_slot == nullptr) {
            resolved = Value();  // table without the field reads nil
            callee_slot = &resolved;
          }
        }
        ArgScratch scratch(*this);
        gather_args(scratch.args, ins.a, nargs);
        if (const auto* nf = callee_slot->native();
            nf != nullptr && (*nf)->fn1 && !(*nf)->compiled) {
          // Calling through the slot without copying is safe here: fn1 is
          // only ever installed by host registration, and no registered
          // fn1 mutates script tables (which could free the slot mid-call).
          Value r = (*nf)->fn1(host_, scratch.args);
          if (nres >= 1) reg(ins.a) = std::move(r);
          for (std::int32_t i = 1; i < nres; ++i) reg(ins.a + i) = Value();
          break;
        }
        // Generic call: copy the callee first — a native could mutate the
        // table out from under the cached slot mid-call.
        const Value callee = *callee_slot;
        std::vector<Value> results = do_call(callee, scratch.args, ins.line);
        store_results(ins.a, nres, std::move(results));
        break;
      }
      case Op::kForInCall: {
        // One fused generic-for iteration header: budget tick, protocol call
        // r[b..b+c) = r[a](r[a+1], r[a+2]) leaving the persistent f/s/ctrl
        // registers in place, exit to pc=d when the first result is nil,
        // else ctrl = first result. Order matches the unfused sequence.
        {
          ICEntry& ic = frame.ics[ins.ic];
          if (ic.spec != nullptr) {
            // Prefix accelerator: bulk-processes the elements its guards
            // and the step budget allow, then falls through — this generic
            // header performs the next iteration (or the exhaust exit).
            if (host_.trace_enabled()) {
              run_field_kernel(*ic.spec, ins, &stack_[frame.base], frame.ics,
                               *frame.upvals, host_);
            }
          } else if (host_.trace_enabled() && !recording_ && !ic.spec_failed &&
                     ++ic.hot >= host_.trace_threshold()) {
            arm_recording(frame, ins_pc, ins, static_cast<std::uint32_t>(ins.d), ic);
          }
        }
        host_.count_step(ins.line);
        const Value& f = reg(ins.a);
        if (const auto* nf = f.native();
            nf != nullptr && (*nf)->builtin == NativeFunction::Builtin::kIpairsIter) {
          // Open-coded ipairs iterator, as in kCall: identical semantics,
          // no argument/result vectors per element.
          const Value& ctrl = reg(ins.a + 2);
          const double next = ctrl.is_number() ? ctrl.as_number() + 1 : 1;
          Value element = host_.index_for_iteration(reg(ins.a + 1), next);
          if (element.is_nil()) {
            for (std::int32_t i = 0; i < ins.c; ++i) reg(ins.b + i) = Value();
            pc = static_cast<std::size_t>(ins.d);
            break;
          }
          if (ins.c >= 1) reg(ins.b) = Value(next);
          if (ins.c >= 2) reg(ins.b + 1) = std::move(element);
          for (std::int32_t i = 2; i < ins.c; ++i) reg(ins.b + i) = Value();
          reg(ins.a + 2) = Value(next);
          break;
        }
        ArgScratch scratch(*this);
        scratch.args.reserve(2);
        scratch.args.push_back(reg(ins.a + 1));
        scratch.args.push_back(reg(ins.a + 2));
        // Copy (not move): f persists across iterations, and nested calls
        // may reallocate the register stack under this reference.
        const Value callee = f;
        std::vector<Value> results = do_call(callee, scratch.args, ins.line);
        store_results(ins.b, ins.c, std::move(results));
        if (reg(ins.b).is_nil()) {
          pc = static_cast<std::size_t>(ins.d);
          break;
        }
        reg(ins.a + 2) = reg(ins.b);
        break;
      }
      case Op::kReturn: {
        std::vector<Value> out;
        const std::int32_t fixed = ins.b >= 0 ? ins.b : -ins.b - 1;
        out.reserve(static_cast<std::size_t>(fixed) + (ins.b < 0 ? pending.size() : 0));
        for (std::int32_t i = 0; i < fixed; ++i) out.push_back(std::move(reg(ins.a + i)));
        if (ins.b < 0) {
          for (auto& v : pending) out.push_back(std::move(v));
        }
        return out;
      }
      case Op::kAdjust: {
        for (std::int32_t i = 0; i < ins.b; ++i) {
          reg(ins.a + i) = static_cast<std::size_t>(i) < pending.size()
                               ? std::move(pending[static_cast<std::size_t>(i)])
                               : Value();
        }
        pending.clear();
        break;
      }

      case Op::kClosure: {
        const auto proto_index = static_cast<std::uint32_t>(ins.b);
        const FunctionProto& proto = frame.chunk->protos[proto_index];
        auto closure = std::make_shared<VmClosure>();
        closure->chunk = frame.chunk;
        closure->proto_index = proto_index;
        closure->upvals.reserve(proto.upvals.size());
        for (const auto& desc : proto.upvals) {
          closure->upvals.push_back(desc.from_parent_cell ? frame.cells[desc.index]
                                                          : (*frame.upvals)[desc.index]);
        }
        auto nf = std::make_shared<NativeFunction>();
        nf->name = proto.name;
        nf->compiled = closure;
        nf->fn = [closure](Interpreter& interp, std::vector<Value>& call_args) {
          return interp.call_compiled(closure, call_args);
        };
        reg(ins.a) = Value(std::move(nf));
        break;
      }

      case Op::kToNum:
        // as_number() throws std::bad_variant_access on non-numbers,
        // exactly like the interpreter's evaluate(bound).as_number().
        (void)reg(ins.a).as_number();
        break;
      case Op::kForPrep:
        if (reg(ins.a + 2).as_number() == 0)
          throw ScriptError("for step must not be zero", ins.line);
        break;
      case Op::kForTest: {
        {
          ICEntry& ic = frame.ics[ins.ic];
          if (ic.spec != nullptr) {
            // Prefix accelerator: runs the iterations its guards and the
            // step budget allow over unboxed slots, writes registers back,
            // and falls through to this generic test.
            if (host_.trace_enabled()) {
              run_num_loop(*ic.spec, ins, &stack_[frame.base], host_);
            }
          } else if (host_.trace_enabled() && !recording_ && !ic.spec_failed &&
                     ++ic.hot >= host_.trace_threshold()) {
            arm_recording(frame, ins_pc, ins, static_cast<std::uint32_t>(ins.b), ic);
          }
        }
        const double i = reg(ins.a).as_number();
        const double stop = reg(ins.a + 1).as_number();
        const double step = reg(ins.a + 2).as_number();
        if (!(step > 0 ? i <= stop : i >= stop)) pc = static_cast<std::size_t>(ins.b);
        break;
      }
      case Op::kForNext:
        reg(ins.a) = Value(reg(ins.a).as_number() + reg(ins.a + 2).as_number());
        pc = static_cast<std::size_t>(ins.b);
        break;

      case Op::kPathMid: {
        const Value container = reg(ins.b);
        if (!container.is_table())
          throw ScriptError("cannot declare function in non-table", ins.line);
        reg(ins.a) = container.as_table()->get(Table::Key{consts[ins.c].as_string()});
        break;
      }
      case Op::kPathSet: {
        const Value& container = reg(ins.a);
        if (!container.is_table())
          throw ScriptError("cannot declare function in non-table", ins.line);
        container.as_table()->set(Table::Key{consts[ins.b].as_string()}, reg(ins.c));
        break;
      }

      case Op::kCheckStep: host_.count_step(ins.line); break;
    }
  }
}

void Vm::arm_recording(Frame& frame, std::uint32_t anchor_pc, const Instr& anchor,
                       std::uint32_t exit_pc, ICEntry& entry) {
  entry.hot = 0;  // reset so an abort re-warms from cold
  recorder_.arm(frame.chunk, frame.proto, frame.base, anchor_pc, anchor, exit_pc, &entry);
  recording_ = true;
}

// Runs on every fetched instruction while recording, BEFORE the
// instruction executes — operand observations are pre-state, which is what
// the specializer's replay needs (e.g. kMethodCall moves its receiver out
// of the register during execution).
void Vm::record_step(Frame& frame, std::uint32_t pc, const Instr& ins) {
  if (frame.base != recorder_.frame_base()) return;  // nested call's code
  if (pc == recorder_.anchor_pc()) {
    finish_recording();
    return;
  }
  if (pc == recorder_.exit_pc()) {
    // The loop ended before completing one iteration (empty array, early
    // last element): retryable, not a property of the code.
    abort_recording(false);
    return;
  }
  if (recorder_.size() >= TraceRecorder::kMaxTraceLength) {
    abort_recording(true);
    return;
  }

  const auto reg = [&](std::int32_t i) -> const Value& {
    return stack_[frame.base + static_cast<std::size_t>(i)];
  };
  RecordedInstr ri;
  ri.ins = ins;
  ri.pc = pc;
  switch (ins.op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kMod:
    case Op::kPow:
      ri.numeric = reg(ins.b).is_number() && reg(ins.c).is_number();
      break;
    case Op::kNeg:
    case Op::kMove:
      ri.numeric = reg(ins.b).is_number();
      break;
    case Op::kGetField: {
      const Value& obj = reg(ins.b);
      if (obj.is_userdata()) {
        ri.mt = obj.as_userdata()->methods();
        const auto& name = frame.proto->consts[ins.c].as_string();
        const auto it = ri.mt->trace_tags.find(name);
        if (it != ri.mt->trace_tags.end()) ri.tag = it->second;
      }
      break;
    }
    case Op::kMethodCall: {
      const std::int32_t obj_hi = ins.d >= 0 ? (ins.d >> 16) : 0;
      const Value& object = obj_hi != 0 ? reg(obj_hi - 1) : reg(ins.a);
      if (object.is_userdata()) {
        ri.mt = object.as_userdata()->methods();
        const auto& name = frame.proto->consts[ins.b].as_string();
        const auto it = ri.mt->trace_tags.find(name);
        if (it != ri.mt->trace_tags.end()) ri.tag = it->second;
      }
      break;
    }
    case Op::kCallGlobalField: {
      // Resolve the callee the way the IC-hit path would; a cold site
      // (possible only if this is its first execution) records no callee
      // and the builder rejects the trace.
      const ICEntry& ic = frame.ics[ins.ic];
      if (ic.tbl != nullptr && ic.global_slot != nullptr && ic.global_slot->is_table() &&
          ic.global_slot->as_table().get() == ic.tbl && ic.tversion == ic.tbl->version()) {
        if (const auto* nf = ic.tslot->native()) ri.callee = nf->get();
      }
      break;
    }
    default:
      break;
  }
  recorder_.append(std::move(ri));
}

void Vm::finish_recording() {
  ICEntry* entry = recorder_.entry();
  const std::size_t base = recorder_.frame_base();
  RecordedTrace trace = recorder_.take();
  recording_ = false;
  // Observe the iterated container now (same loop instance: f/s/ctrl
  // persist across iterations, and we are back at the anchor).
  if (trace.anchor.op == Op::kForInCall) {
    const Value& container = stack_[base + static_cast<std::size_t>(trace.anchor.a) + 1];
    if (container.is_userdata()) trace.anchor_mt = container.as_userdata()->methods();
  }
  auto spec = build_specialization(std::move(trace), host_);
  if (spec != nullptr) {
    entry->spec = spec;
    specializations_.push_back(std::move(spec));
  } else {
    entry->spec_failed = true;  // recorded but unspecializable: never retry
  }
  recorder_.reset();
}

void Vm::abort_recording(bool hard) {
  if (ICEntry* entry = recorder_.entry(); entry != nullptr && hard) entry->spec_failed = true;
  recording_ = false;
  recorder_.reset();
}

}  // namespace moongen::script
