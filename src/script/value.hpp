// Value model of the embedded scripting language.
//
// MoonGen's defining feature is that the *whole* packet generation logic
// lives in user-controlled Lua scripts (paper Sections 1, 3.2). This module
// reproduces that architecture with an embedded Lua-subset interpreter:
// dynamically typed values, tables, first-class functions and host-bound
// userdata objects. (The original uses LuaJIT for speed; a tree-walking
// interpreter reproduces the programming model — the performance gap to
// compiled code is quantified in the benchmarks.)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace moongen::script {

class Value;
class Interpreter;

/// Host function: receives evaluated arguments, returns results.
using NativeFn = std::function<std::vector<Value>(Interpreter&, std::vector<Value>&)>;

/// Single-result variant: returns the call's first result (nil when the
/// call yields none). The VM uses it at call sites with a fixed result
/// count — where truncation/nil-padding makes it exactly equivalent to the
/// vector protocol — to skip the per-call result-vector allocation.
using NativeFn1 = std::function<Value(Interpreter&, std::vector<Value>&)>;

struct NativeFunction {
  /// Well-known natives the VM is allowed to open-code at call sites
  /// ("direct-call sites for known bindings"). The open-coded path must be
  /// behaviourally identical to `fn`. kMathRandom additionally lets the
  /// trace specializer fold `math.random(m)` draws into field-modifier
  /// kernels that pull from the interpreter's own engine (same stream).
  enum class Builtin : std::uint8_t { kNone, kIpairsIter, kMathRandom };

  std::string name;
  NativeFn fn;
  /// Set when this function wraps a compiled VM closure (a VmClosure); the
  /// VM uses it to call compiled code directly instead of through `fn`.
  std::shared_ptr<void> compiled;
  Builtin builtin = Builtin::kNone;
  /// Optional single-result fast path; when set, it must be behaviourally
  /// identical to `fn` truncated to one result.
  NativeFn1 fn1;
};

/// Table: Lua-style associative container. Keys are strings or numbers.
class Table {
 public:
  using Key = std::variant<double, std::string>;

  Value get(const Key& key) const;
  void set(const Key& key, Value value);
  [[nodiscard]] std::size_t array_size() const;  ///< # operator: 1..n dense prefix

  std::map<Key, Value>& entries() { return entries_; }
  [[nodiscard]] const std::map<Key, Value>& entries() const { return entries_; }

  /// Pointer to the entry for `key`, or nullptr when absent. std::map nodes
  /// are stable under insertion and in-place assignment, so the VM's field
  /// inline caches may hold this pointer as long as version() is unchanged.
  [[nodiscard]] const Value* find_slot(const Key& key) const;

  /// Process-unique cache token: freshly drawn at construction and after
  /// every erasure (assigning nil). Values never repeat across Table
  /// instances, so (Table*, version) pairs cannot collide even when the
  /// allocator reuses a freed table's address.
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  static std::uint64_t next_version();

  std::map<Key, Value> entries_;
  std::uint64_t version_ = next_version();
};

struct FunctionDecl;  // AST node
class Environment;

/// Script-defined function: AST + captured environment.
struct ScriptFunction {
  const FunctionDecl* decl = nullptr;
  std::shared_ptr<Environment> closure;
  std::string name;
};

class UserData;

/// Method on a userdata object.
using Method = std::function<std::vector<Value>(Interpreter&, UserData&, std::vector<Value>&)>;

/// Single-result method variant (see NativeFn1): first result or nil.
/// A raw function pointer: registrations are capture-less lambdas, and the
/// per-packet call sites shouldn't pay std::function indirection.
/// Implementations must not mutate the argument vector — the VM passes a
/// shared empty vector at zero-arg call sites.
using Method1 = Value (*)(Interpreter&, UserData&, std::vector<Value>&);

/// Static effect summary of a userdata method or field, declared by the
/// binding that installs the method table. The trace specializer uses these
/// to prove that a recorded loop body is a straight-line sequence of packet
/// field writes: kDeref names accessors that return a view over the same
/// packet bytes (optionally narrowing to a field), kWrite names methods
/// that store their single numeric argument into a header field. A method
/// without a tag is opaque and blocks specialization of traces that call it.
struct TraceTag {
  enum class Kind : std::uint8_t {
    kNone,   ///< opaque (default)
    kDeref,  ///< returns a view/ref into the receiver's packet bytes
    kWrite,  ///< writes its numeric argument to a packet field
  };

  Kind kind = Kind::kNone;
  /// kDeref: the result carries this field as its write target (e.g.
  /// ip.src yields an address ref whose set() writes offset 26 width 4).
  bool carries_field = false;
  /// kWrite: offset is relative to the field carried by the receiver view
  /// (true for addr:set) rather than an absolute packet offset.
  bool relative = false;
  std::uint16_t offset = 0;  ///< byte offset into the packet (or carried base)
  std::uint8_t width = 0;    ///< field width in bytes (1, 2 or 4)
};

/// Behaviour table of a userdata type: named methods plus an optional
/// field-access hook (`obj.field`), like a Lua metatable's __index.
struct MethodTable {
  std::string type_name;
  std::map<std::string, Method> methods;
  /// Single-result fast paths for hot methods; each entry must match the
  /// same-named `methods` entry truncated to one result. The VM's method
  /// inline caches prefer these at fixed-result-count call sites.
  std::map<std::string, Method1> methods1;
  /// Field access hook: `obj.field` for fields that are not methods.
  /// Raw pointers (like Method1): these run per packet-field access.
  Value (*index)(Interpreter&, UserData&, const std::string&) = nullptr;
  /// Numeric indexing hook: `obj[i]` (1-based) — also drives ipairs().
  Value (*index_number)(Interpreter&, UserData&, double) = nullptr;
  /// True for array-of-packets types (BufArray): ipairs over such an object
  /// yields packet wrappers whose tagged methods write into the element's
  /// buffer, so a recorded trace generalizes from one element to all.
  bool packet_array = false;
  /// Effect summaries for methods/index fields, keyed by name. Absent names
  /// are opaque.
  std::map<std::string, TraceTag> trace_tags;
};

/// Host object exposed to scripts. `handle` keeps the underlying object
/// alive; `ptr` is the typed pointer used by methods.
class UserData {
 public:
  UserData(const MethodTable* methods, std::shared_ptr<void> handle, void* ptr)
      : methods_(methods), handle_(std::move(handle)), ptr_(ptr) {}

  [[nodiscard]] const MethodTable* methods() const { return methods_; }
  [[nodiscard]] void* ptr() const { return ptr_; }
  /// The owning handle. `ptr` may point INTO the held object (e.g. a cache
  /// struct whose first concern is the exposed object), so bindings that
  /// need the full holder use this instead of `as<T>()`.
  [[nodiscard]] const std::shared_ptr<void>& handle() const { return handle_; }
  template <typename T>
  [[nodiscard]] T* as() const {
    return static_cast<T*>(ptr_);
  }
  [[nodiscard]] const std::string& type_name() const { return methods_->type_name; }

 private:
  const MethodTable* methods_;
  std::shared_ptr<void> handle_;
  void* ptr_;
};

class Value {
 public:
  using Storage = std::variant<std::monostate, bool, double, std::string,
                               std::shared_ptr<Table>, std::shared_ptr<NativeFunction>,
                               std::shared_ptr<ScriptFunction>, std::shared_ptr<UserData>>;

  Value() = default;
  Value(bool b) : storage_(b) {}                      // NOLINT(google-explicit-constructor)
  Value(double d) : storage_(d) {}                    // NOLINT
  Value(int i) : storage_(static_cast<double>(i)) {}  // NOLINT
  Value(const char* s) : storage_(std::string(s)) {}  // NOLINT
  Value(std::string s) : storage_(std::move(s)) {}    // NOLINT
  Value(std::shared_ptr<Table> t) : storage_(std::move(t)) {}             // NOLINT
  Value(std::shared_ptr<NativeFunction> f) : storage_(std::move(f)) {}    // NOLINT
  Value(std::shared_ptr<ScriptFunction> f) : storage_(std::move(f)) {}    // NOLINT
  Value(std::shared_ptr<UserData> u) : storage_(std::move(u)) {}          // NOLINT

  [[nodiscard]] bool is_nil() const { return std::holds_alternative<std::monostate>(storage_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(storage_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(storage_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(storage_); }
  [[nodiscard]] bool is_table() const {
    return std::holds_alternative<std::shared_ptr<Table>>(storage_);
  }
  [[nodiscard]] bool is_userdata() const {
    return std::holds_alternative<std::shared_ptr<UserData>>(storage_);
  }
  [[nodiscard]] bool is_callable() const {
    return std::holds_alternative<std::shared_ptr<NativeFunction>>(storage_) ||
           std::holds_alternative<std::shared_ptr<ScriptFunction>>(storage_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(storage_); }
  [[nodiscard]] double as_number() const { return std::get<double>(storage_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(storage_); }
  [[nodiscard]] const std::shared_ptr<Table>& as_table() const {
    return std::get<std::shared_ptr<Table>>(storage_);
  }
  [[nodiscard]] const std::shared_ptr<UserData>& as_userdata() const {
    return std::get<std::shared_ptr<UserData>>(storage_);
  }
  [[nodiscard]] const std::shared_ptr<NativeFunction>* native() const {
    return std::get_if<std::shared_ptr<NativeFunction>>(&storage_);
  }
  [[nodiscard]] const std::shared_ptr<ScriptFunction>* script_fn() const {
    return std::get_if<std::shared_ptr<ScriptFunction>>(&storage_);
  }

  /// Lua truthiness: only nil and false are falsy.
  [[nodiscard]] bool truthy() const {
    if (is_nil()) return false;
    if (is_bool()) return as_bool();
    return true;
  }

  /// Lua equality semantics (==).
  [[nodiscard]] bool equals(const Value& other) const;

  /// Human-readable rendering (print / tostring).
  [[nodiscard]] std::string to_display_string() const;

  /// Type name for error messages ("nil", "number", ...).
  [[nodiscard]] std::string type_name() const;

  [[nodiscard]] const Storage& storage() const { return storage_; }

 private:
  Storage storage_;
};

/// Raised for script runtime errors (with source location when available).
class ScriptError : public std::runtime_error {
 public:
  explicit ScriptError(const std::string& message, int line = 0)
      : std::runtime_error(line > 0 ? "line " + std::to_string(line) + ": " + message
                                    : message) {}
};

}  // namespace moongen::script
