// Tree-walking interpreter for the embedded Lua-subset language.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "script/ast.hpp"
#include "script/value.hpp"

namespace moongen::script {

/// Lexical environment: locals of one scope plus a parent chain ending in
/// the interpreter's global table.
class Environment : public std::enable_shared_from_this<Environment> {
 public:
  explicit Environment(std::shared_ptr<Environment> parent = nullptr)
      : parent_(std::move(parent)) {}

  /// Declares a local in this scope (shadows outer scopes).
  void declare(const std::string& name, Value value) { values_[name] = std::move(value); }

  /// Looks `name` up through the scope chain; nil if absent everywhere.
  [[nodiscard]] Value get(const std::string& name) const;

  /// Assigns to the nearest scope declaring `name`; returns false when no
  /// scope declares it (the caller then writes a global).
  bool assign(const std::string& name, const Value& value);

 private:
  std::map<std::string, Value> values_;
  std::shared_ptr<Environment> parent_;
};

class Interpreter {
 public:
  /// Creates an interpreter over a parsed chunk with the base library
  /// (print, math, string helpers, ipairs/pairs, tostring/tonumber...).
  explicit Interpreter(std::shared_ptr<const Program> program);

  /// Executes the top-level block (declares functions, runs statements).
  void run();

  /// Calls a global function by name (the `master`/slave entry points).
  std::vector<Value> call_global(const std::string& name, std::vector<Value> args);

  /// Calls any callable value.
  std::vector<Value> call(const Value& callee, std::vector<Value> args, int line = 0);

  /// Registers a host value in the global scope (binding modules).
  void set_global(const std::string& name, Value value);
  [[nodiscard]] Value get_global(const std::string& name) const;

  /// Shared program (for spawning further interpreters on the same chunk).
  [[nodiscard]] const std::shared_ptr<const Program>& program() const { return program_; }

  /// Statement execution budget: aborts runaway scripts in tests. 0 = off.
  void set_step_limit(std::uint64_t limit) { step_limit_ = limit; }

  /// 1-based element access used by ipairs(): tables and userdata with a
  /// numeric-index hook.
  Value index_for_iteration(const Value& container, double index);

 private:
  struct Flow {
    enum class Kind { kNormal, kBreak, kReturn } kind = Kind::kNormal;
    std::vector<Value> values;
  };

  Flow execute_block(const Block& block, const std::shared_ptr<Environment>& env);
  Flow execute(const Stmt& stmt, const std::shared_ptr<Environment>& env);

  Value evaluate(const Expr& expr, const std::shared_ptr<Environment>& env);
  std::vector<Value> evaluate_multi(const Expr& expr, const std::shared_ptr<Environment>& env);
  std::vector<Value> evaluate_list(const std::vector<ExprPtr>& exprs,
                                   const std::shared_ptr<Environment>& env);

  Value binary_op(int op, const Expr& lhs_expr, const Expr& rhs_expr,
                  const std::shared_ptr<Environment>& env, int line);
  Value index_value(const Value& object, const Value& key, int line);
  void assign_target(const Expr& target, const Value& value,
                     const std::shared_ptr<Environment>& env);

  void install_base_library();
  void count_step(int line);

  std::shared_ptr<const Program> program_;
  std::shared_ptr<Environment> globals_;
  std::uint64_t step_limit_ = 0;
  std::uint64_t steps_ = 0;
};

/// Convenience: number/string/table argument extraction with diagnostics.
double arg_number(const std::vector<Value>& args, std::size_t index, const char* what);
std::string arg_string(const std::vector<Value>& args, std::size_t index, const char* what);
std::shared_ptr<Table> arg_table(const std::vector<Value>& args, std::size_t index,
                                 const char* what);
std::shared_ptr<UserData> arg_userdata(const std::vector<Value>& args, std::size_t index,
                                       const char* what, const MethodTable* expected = nullptr);

/// Wraps a NativeFn into a Value.
Value make_native(std::string name, NativeFn fn);

}  // namespace moongen::script
