// Tree-walking interpreter for the embedded Lua-subset language.
#pragma once

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "script/ast.hpp"
#include "script/value.hpp"

namespace moongen::script {

struct Chunk;
struct VmClosure;
class Vm;

/// Lexical environment: locals of one scope plus a parent chain ending in
/// the interpreter's global table.
class Environment : public std::enable_shared_from_this<Environment> {
 public:
  explicit Environment(std::shared_ptr<Environment> parent = nullptr)
      : parent_(std::move(parent)) {}

  /// Declares a local in this scope (shadows outer scopes).
  void declare(const std::string& name, Value value) { values_[name] = std::move(value); }

  /// Looks `name` up through the scope chain; nil if absent everywhere.
  [[nodiscard]] Value get(const std::string& name) const;

  /// Assigns to the nearest scope declaring `name`; returns false when no
  /// scope declares it (the caller then writes a global).
  bool assign(const std::string& name, const Value& value);

  /// Pointer to this scope's own entry for `name` (no parent walk), or
  /// nullptr. std::map nodes are stable, so the VM caches these pointers.
  Value* find_local(const std::string& name) {
    const auto it = values_.find(name);
    return it != values_.end() ? &it->second : nullptr;
  }

  /// Reference to this scope's entry for `name`, creating a nil one.
  Value& slot(const std::string& name) { return values_[name]; }

 private:
  std::map<std::string, Value> values_;
  std::shared_ptr<Environment> parent_;
};

class Interpreter {
 public:
  /// Creates an interpreter over a parsed chunk with the base library
  /// (print, math, string helpers, ipairs/pairs, tostring/tonumber...).
  explicit Interpreter(std::shared_ptr<const Program> program);
  ~Interpreter();  // out of line: Vm is incomplete here

  /// Executes the top-level block (declares functions, runs statements).
  /// By default this compiles to bytecode and runs on the register VM;
  /// set_tree_walk(true) (or MOONGEN_SCRIPT_TREEWALK=1) selects the
  /// tree-walking reference interpreter instead.
  void run();

  /// Engine selection. The tree-walker is the reference semantics; the VM
  /// is the default fast path (see DESIGN.md section 11).
  void set_tree_walk(bool tree_walk) { tree_walk_ = tree_walk; }
  [[nodiscard]] bool tree_walk() const { return tree_walk_; }

  /// Trace specialization: the VM's hot-loop tier (DESIGN.md section 13).
  /// On by default; MOONGEN_SCRIPT_NOTRACE=1 (or set_trace(false)) keeps
  /// the generic bytecode VM only. Irrelevant when tree-walking.
  void set_trace(bool on) { trace_ = on; }
  [[nodiscard]] bool trace_enabled() const { return trace_; }
  /// Back edges a loop anchor must see before recording starts. The
  /// default amortizes recording cost; tests lower it to force the trace
  /// tier onto short loops.
  void set_trace_threshold(std::uint32_t n) { trace_threshold_ = n; }
  [[nodiscard]] std::uint32_t trace_threshold() const { return trace_threshold_; }

  /// --- Trace-specializer support (specializer.cpp) -----------------------
  /// The engine behind math.random/math.randomseed. Specialized kernels
  /// draw from it directly so the random stream stays byte-identical with
  /// the generic engines.
  [[nodiscard]] std::mt19937_64* math_rng() const { return math_rng_.get(); }
  /// Identity of the installed math.random native: kernels folding random
  /// draws must verify the call site still resolves to exactly this
  /// function (table version checks miss in-place reassignment).
  [[nodiscard]] const NativeFunction* math_random_native() const { return math_random_.get(); }
  /// Statement-budget accounting for bulk specialized iterations: kernels
  /// bound their iteration count by the remaining budget, tick it in one
  /// add, and leave the exhaustion throw to the generic loop code.
  [[nodiscard]] std::uint64_t step_limit() const { return step_limit_; }
  [[nodiscard]] std::uint64_t steps_taken() const { return steps_; }
  void add_steps(std::uint64_t n) { steps_ += n; }
  /// Global environment slot for `name`, or nullptr when absent (stable
  /// std::map node, same contract as the VM's global ICs).
  Value* global_slot_if_exists(const std::string& name) { return globals_->find_local(name); }
  /// The VM, if one has been created (introspection: installed traces).
  [[nodiscard]] Vm* vm_if_created() const { return vm_.get(); }

  /// Invokes a compiled closure (used by VM closure wrappers, so compiled
  /// functions stay callable from natives and from the tree-walker).
  std::vector<Value> call_compiled(const std::shared_ptr<VmClosure>& closure,
                                   std::vector<Value>& args);

  /// Calls a global function by name (the `master`/slave entry points).
  std::vector<Value> call_global(const std::string& name, std::vector<Value> args);

  /// Calls any callable value.
  std::vector<Value> call(const Value& callee, std::vector<Value> args, int line = 0);

  /// Registers a host value in the global scope (binding modules).
  void set_global(const std::string& name, Value value);
  [[nodiscard]] Value get_global(const std::string& name) const;

  /// Shared program (for spawning further interpreters on the same chunk).
  [[nodiscard]] const std::shared_ptr<const Program>& program() const { return program_; }

  /// Statement execution budget: aborts runaway scripts in tests. 0 = off.
  void set_step_limit(std::uint64_t limit) { step_limit_ = limit; }

  /// 1-based element access used by ipairs(): tables and userdata with a
  /// numeric-index hook. Inline: the VM's open-coded iterator calls this
  /// once per element.
  Value index_for_iteration(const Value& container, double index) {
    if (container.is_table()) return container.as_table()->get(Table::Key{index});
    if (container.is_userdata()) {
      auto& ud = *container.as_userdata();
      if (ud.methods()->index_number != nullptr) {
        return ud.methods()->index_number(*this, ud, index);
      }
    }
    return Value();
  }

 private:
  struct Flow {
    enum class Kind { kNormal, kBreak, kReturn } kind = Kind::kNormal;
    std::vector<Value> values;
  };

  Flow execute_block(const Block& block, const std::shared_ptr<Environment>& env);
  Flow execute(const Stmt& stmt, const std::shared_ptr<Environment>& env);

  Value evaluate(const Expr& expr, const std::shared_ptr<Environment>& env);
  std::vector<Value> evaluate_multi(const Expr& expr, const std::shared_ptr<Environment>& env);
  std::vector<Value> evaluate_list(const std::vector<ExprPtr>& exprs,
                                   const std::shared_ptr<Environment>& env);

  Value binary_op(int op, const Expr& lhs_expr, const Expr& rhs_expr,
                  const std::shared_ptr<Environment>& env, int line);
  Value index_value(const Value& object, const Value& key, int line);
  void assign_target(const Expr& target, const Value& value,
                     const std::shared_ptr<Environment>& env);

  void install_base_library();
  /// Statement budget tick — inline: both engines pay it per statement.
  void count_step(int line) {
    if (step_limit_ != 0 && ++steps_ > step_limit_) step_budget_exceeded(line);
  }
  [[noreturn]] void step_budget_exceeded(int line);

  /// Compiles the program once (lazily) and returns the owned VM.
  void ensure_compiled();
  Vm& vm();

  friend class Vm;  // the VM reuses call/index_value/count_step/globals_

  std::shared_ptr<const Program> program_;
  std::shared_ptr<Environment> globals_;
  std::uint64_t step_limit_ = 0;
  std::uint64_t steps_ = 0;
  bool tree_walk_ = default_tree_walk();
  bool trace_ = default_trace();
  std::uint32_t trace_threshold_ = 56;
  std::shared_ptr<const Chunk> chunk_;
  std::unique_ptr<Vm> vm_;
  /// Installed by install_base_library (see math_rng/math_random_native).
  std::shared_ptr<std::mt19937_64> math_rng_;
  std::shared_ptr<NativeFunction> math_random_;

  static bool default_tree_walk();
  static bool default_trace();
};

/// Convenience: number/string/table argument extraction with diagnostics.
double arg_number(const std::vector<Value>& args, std::size_t index, const char* what);
std::string arg_string(const std::vector<Value>& args, std::size_t index, const char* what);
std::shared_ptr<Table> arg_table(const std::vector<Value>& args, std::size_t index,
                                 const char* what);
std::shared_ptr<UserData> arg_userdata(const std::vector<Value>& args, std::size_t index,
                                       const char* what, const MethodTable* expected = nullptr);

/// Wraps a NativeFn into a Value.
Value make_native(std::string name, NativeFn fn);

/// Non-short-circuit binary operator semantics (==, ~=, .., relational,
/// arithmetic) shared by the interpreter, the VM and the compiler's
/// constant folder. `op` is the lexer TokenType.
Value apply_binary_op(int op, const Value& lhs, const Value& rhs, int line);

}  // namespace moongen::script
