#include "script/value.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>

namespace moongen::script {

std::uint64_t Table::next_version() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Value Table::get(const Key& key) const {
  const auto it = entries_.find(key);
  return it != entries_.end() ? it->second : Value();
}

const Value* Table::find_slot(const Key& key) const {
  const auto it = entries_.find(key);
  return it != entries_.end() ? &it->second : nullptr;
}

void Table::set(const Key& key, Value value) {
  if (value.is_nil()) {
    // Erasure invalidates cached slot pointers; draw a fresh token so every
    // inline cache referencing this table misses and re-resolves.
    if (entries_.erase(key) > 0) version_ = next_version();
  } else {
    entries_[key] = std::move(value);
  }
}

std::size_t Table::array_size() const {
  std::size_t n = 0;
  while (entries_.contains(Key{static_cast<double>(n + 1)})) ++n;
  return n;
}

bool Value::equals(const Value& other) const {
  if (storage_.index() != other.storage_.index()) return false;
  if (is_nil()) return true;
  if (is_bool()) return as_bool() == other.as_bool();
  if (is_number()) return as_number() == other.as_number();
  if (is_string()) return as_string() == other.as_string();
  if (is_table()) return as_table() == other.as_table();  // identity
  if (is_userdata()) return as_userdata() == other.as_userdata();
  if (const auto* nf = native()) return *nf == *other.native();
  if (const auto* sf = script_fn()) return *sf == *other.script_fn();
  return false;
}

std::string Value::to_display_string() const {
  if (is_nil()) return "nil";
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_number()) {
    const double d = as_number();
    if (std::floor(d) == d && std::abs(d) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f", d);
      return buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", d);
    return buf;
  }
  if (is_string()) return as_string();
  if (is_table()) return "table";
  if (is_userdata()) return as_userdata()->type_name();
  if (native() != nullptr) return "function:" + (*native())->name;
  if (script_fn() != nullptr) return "function:" + (*script_fn())->name;
  return "?";
}

std::string Value::type_name() const {
  if (is_nil()) return "nil";
  if (is_bool()) return "boolean";
  if (is_number()) return "number";
  if (is_string()) return "string";
  if (is_table()) return "table";
  if (is_userdata()) return "userdata(" + as_userdata()->type_name() + ")";
  return "function";
}

}  // namespace moongen::script
