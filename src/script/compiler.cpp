#include "script/compiler.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "script/lexer.hpp"

namespace moongen::script {

// Shared binary-op semantics (defined in interpreter.cpp) used here for
// compile-time constant folding so folded results match runtime results.
Value apply_binary_op(int op, const Value& lhs, const Value& rhs, int line);

namespace {

// ---------------------------------------------------------------------------
// Capture analysis
// ---------------------------------------------------------------------------
//
// A local must live in a heap cell (instead of a register) when any nested
// function references its name. We over-approximate by collecting every
// name referenced anywhere inside any nested function at any depth; a
// false positive only costs a box, never changes semantics.

void collect_names(const Block& block, std::set<std::string>& out);

// Names referenced inside a nested function body, minus the function's own
// parameters: a parameter shadows its name for the entire body, so such a
// reference can never reach an enclosing local. Local declarations are NOT
// subtracted — a reference may textually precede the declaration and then
// legally resolves to the outer scope, so dropping those would be unsound.
void collect_nested_fn_names(const std::vector<std::string>& params, const Block& body,
                             std::set<std::string>& out) {
  std::set<std::string> inner;
  collect_names(body, inner);
  for (const auto& p : params) inner.erase(p);
  out.insert(inner.begin(), inner.end());
}

void collect_names(const Expr& expr, std::set<std::string>& out) {
  switch (expr.kind) {
    case ExprKind::kName: out.insert(expr.name); break;
    case ExprKind::kIndex:
      collect_names(*expr.object, out);
      collect_names(*expr.key, out);
      break;
    case ExprKind::kCall:
      collect_names(*expr.callee, out);
      for (const auto& a : expr.args) collect_names(*a, out);
      break;
    case ExprKind::kMethodCall:
      collect_names(*expr.object, out);
      for (const auto& a : expr.args) collect_names(*a, out);
      break;
    case ExprKind::kFunction:
      collect_nested_fn_names(expr.function->params, expr.function->body, out);
      break;
    case ExprKind::kBinary:
      collect_names(*expr.lhs, out);
      collect_names(*expr.rhs, out);
      break;
    case ExprKind::kUnary: collect_names(*expr.rhs, out); break;
    case ExprKind::kTable:
      for (const auto& item : expr.items) {
        if (item.expr_key) collect_names(*item.expr_key, out);
        collect_names(*item.value, out);
      }
      break;
    default: break;
  }
}

void collect_names(const Stmt& stmt, std::set<std::string>& out) {
  for (const auto& e : stmt.exprs) collect_names(*e, out);
  for (const auto& t : stmt.targets) collect_names(*t, out);
  if (stmt.expr) collect_names(*stmt.expr, out);
  if (stmt.condition) collect_names(*stmt.condition, out);
  if (stmt.for_start) collect_names(*stmt.for_start, out);
  if (stmt.for_stop) collect_names(*stmt.for_stop, out);
  if (stmt.for_step) collect_names(*stmt.for_step, out);
  for (const auto& b : stmt.branches) {
    collect_names(*b.condition, out);
    collect_names(b.body, out);
  }
  collect_names(stmt.else_body, out);
  collect_names(stmt.body, out);
  if (!stmt.func_path.empty()) out.insert(stmt.func_path.front());
  if (stmt.function) collect_nested_fn_names(stmt.function->params, stmt.function->body, out);
}

void collect_names(const Block& block, std::set<std::string>& out) {
  for (const auto& s : block) collect_names(*s, out);
}

/// Names referenced inside any function nested in `block` (not counting
/// `block`'s own statements outside those functions).
void collect_captured(const Block& block, std::set<std::string>& out);

void collect_captured(const Expr& expr, std::set<std::string>& out) {
  switch (expr.kind) {
    case ExprKind::kFunction:
      collect_nested_fn_names(expr.function->params, expr.function->body, out);
      break;
    case ExprKind::kIndex:
      collect_captured(*expr.object, out);
      collect_captured(*expr.key, out);
      break;
    case ExprKind::kCall:
      collect_captured(*expr.callee, out);
      for (const auto& a : expr.args) collect_captured(*a, out);
      break;
    case ExprKind::kMethodCall:
      collect_captured(*expr.object, out);
      for (const auto& a : expr.args) collect_captured(*a, out);
      break;
    case ExprKind::kBinary:
      collect_captured(*expr.lhs, out);
      collect_captured(*expr.rhs, out);
      break;
    case ExprKind::kUnary: collect_captured(*expr.rhs, out); break;
    case ExprKind::kTable:
      for (const auto& item : expr.items) {
        if (item.expr_key) collect_captured(*item.expr_key, out);
        collect_captured(*item.value, out);
      }
      break;
    default: break;
  }
}

void collect_captured(const Stmt& stmt, std::set<std::string>& out) {
  for (const auto& e : stmt.exprs) collect_captured(*e, out);
  for (const auto& t : stmt.targets) collect_captured(*t, out);
  if (stmt.expr) collect_captured(*stmt.expr, out);
  if (stmt.condition) collect_captured(*stmt.condition, out);
  if (stmt.for_start) collect_captured(*stmt.for_start, out);
  if (stmt.for_stop) collect_captured(*stmt.for_stop, out);
  if (stmt.for_step) collect_captured(*stmt.for_step, out);
  for (const auto& b : stmt.branches) {
    collect_captured(*b.condition, out);
    collect_captured(b.body, out);
  }
  collect_captured(stmt.else_body, out);
  collect_captured(stmt.body, out);
  if (stmt.function) collect_nested_fn_names(stmt.function->params, stmt.function->body, out);
}

void collect_captured(const Block& block, std::set<std::string>& out) {
  for (const auto& s : block) collect_captured(*s, out);
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

struct FuncState {
  FuncState* parent = nullptr;
  bool toplevel = false;
  std::uint32_t proto_index = 0;
  FunctionProto proto;

  struct Local {
    std::string name;
    bool is_cell = false;
    std::uint32_t idx = 0;   // register or cell index
    std::uint32_t depth = 0;
  };
  std::vector<Local> locals;
  std::vector<std::string> upval_names;  // parallel to proto.upvals
  std::uint32_t depth = 0;
  std::uint32_t reg_top = 0;
  std::uint32_t cell_top = 0;
  std::set<std::string> captured;
  std::vector<std::vector<std::size_t>> breaks;  // pending break jumps per loop
  std::map<double, std::int32_t> num_consts;
  std::map<std::string, std::int32_t> str_consts;
};

class Compiler {
 public:
  explicit Compiler(Chunk& chunk) : chunk_(chunk) {}

  std::uint32_t compile_function(const std::vector<std::string>& params, const Block& body,
                                 std::string name, FuncState* parent, bool toplevel) {
    const auto index = static_cast<std::uint32_t>(chunk_.protos.size());
    chunk_.protos.emplace_back();  // reserve the slot; filled at the end

    FuncState fs;
    fs.parent = parent;
    fs.toplevel = toplevel;
    fs.proto_index = index;
    fs.proto.name = std::move(name);
    fs.proto.num_params = static_cast<std::uint32_t>(params.size());
    collect_captured(body, fs.captured);

    // Arguments arrive in registers [0, nparams); captured ones are moved
    // into fresh cells by a prologue so closures can box them.
    fs.reg_top = fs.proto.num_regs = fs.proto.num_params;
    for (std::uint32_t i = 0; i < params.size(); ++i) {
      FuncState::Local local{params[i], fs.captured.contains(params[i]), 0, 0};
      if (local.is_cell) {
        local.idx = fs.cell_top++;
        emit(fs, Op::kNewCell, static_cast<std::int32_t>(local.idx), 0, 0, 0, 0);
        emit(fs, Op::kCellSet, static_cast<std::int32_t>(local.idx),
             static_cast<std::int32_t>(i), 0, 0, 0);
      } else {
        local.idx = i;
      }
      fs.locals.push_back(std::move(local));
    }

    compile_block(fs, body);
    emit(fs, Op::kReturn, 0, 0, 0, 0, 0);  // implicit empty return

    fs.proto.num_cells = std::max(fs.proto.num_cells, fs.cell_top);
    chunk_.protos[index] = std::move(fs.proto);
    return index;
  }

 private:
  Chunk& chunk_;

  // --- emission helpers ----------------------------------------------------

  std::size_t emit(FuncState& fs, Op op, std::int32_t a, std::int32_t b, std::int32_t c,
                   std::int32_t d, std::int32_t line, std::uint16_t ic = 0) {
    fs.proto.code.push_back(Instr{op, ic, a, b, c, d, line});
    return fs.proto.code.size() - 1;
  }

  std::uint16_t new_ic() { return static_cast<std::uint16_t>(chunk_.num_ics++); }

  std::size_t here(const FuncState& fs) const { return fs.proto.code.size(); }

  void patch_jump(FuncState& fs, std::size_t at, std::size_t target) {
    Instr& ins = fs.proto.code[at];
    if (ins.op == Op::kJump) {
      ins.a = static_cast<std::int32_t>(target);
    } else {
      ins.b = static_cast<std::int32_t>(target);
    }
  }

  std::int32_t const_index(FuncState& fs, const Value& v) {
    if (v.is_number()) {
      const auto it = fs.num_consts.find(v.as_number());
      if (it != fs.num_consts.end()) return it->second;
    } else if (v.is_string()) {
      const auto it = fs.str_consts.find(v.as_string());
      if (it != fs.str_consts.end()) return it->second;
    }
    const auto idx = static_cast<std::int32_t>(fs.proto.consts.size());
    fs.proto.consts.push_back(v);
    if (v.is_number()) fs.num_consts[v.as_number()] = idx;
    if (v.is_string()) fs.str_consts[v.as_string()] = idx;
    return idx;
  }

  std::uint32_t alloc_reg(FuncState& fs) {
    const auto r = fs.reg_top++;
    fs.proto.num_regs = std::max(fs.proto.num_regs, fs.reg_top);
    return r;
  }

  std::uint32_t alloc_regs(FuncState& fs, std::uint32_t n) {
    const auto r = fs.reg_top;
    fs.reg_top += n;
    fs.proto.num_regs = std::max(fs.proto.num_regs, fs.reg_top);
    return r;
  }

  // --- scopes and name resolution ------------------------------------------

  struct Scope {
    std::size_t nlocals;
    std::uint32_t reg_top;
    std::uint32_t cell_top;
  };

  Scope open_scope(FuncState& fs) {
    ++fs.depth;
    return Scope{fs.locals.size(), fs.reg_top, fs.cell_top};
  }

  void close_scope(FuncState& fs, const Scope& s) {
    --fs.depth;
    fs.locals.resize(s.nlocals);
    fs.reg_top = s.reg_top;
    fs.cell_top = s.cell_top;
  }

  FuncState::Local* find_local(FuncState& fs, const std::string& name) {
    for (auto it = fs.locals.rbegin(); it != fs.locals.rend(); ++it) {
      if (it->name == name) return &*it;
    }
    return nullptr;
  }

  std::int32_t find_upval(FuncState& fs, const std::string& name) {
    for (std::size_t i = 0; i < fs.upval_names.size(); ++i) {
      if (fs.upval_names[i] == name) return static_cast<std::int32_t>(i);
    }
    if (fs.parent == nullptr) return -1;
    if (const auto* l = find_local(*fs.parent, name)) {
      // Capture analysis guarantees a referenced-enclosing local is a cell.
      if (!l->is_cell) return -1;
      fs.proto.upvals.push_back(UpvalDesc{true, l->idx});
      fs.upval_names.push_back(name);
      return static_cast<std::int32_t>(fs.upval_names.size() - 1);
    }
    const std::int32_t up = find_upval(*fs.parent, name);
    if (up < 0) return -1;
    fs.proto.upvals.push_back(UpvalDesc{false, static_cast<std::uint32_t>(up)});
    fs.upval_names.push_back(name);
    return static_cast<std::int32_t>(fs.upval_names.size() - 1);
  }

  void emit_name_get(FuncState& fs, const std::string& name, std::uint32_t target,
                     std::int32_t line) {
    if (const auto* l = find_local(fs, name)) {
      if (l->is_cell) {
        emit(fs, Op::kCellGet, static_cast<std::int32_t>(target),
             static_cast<std::int32_t>(l->idx), 0, 0, line);
      } else if (l->idx != target) {
        emit(fs, Op::kMove, static_cast<std::int32_t>(target),
             static_cast<std::int32_t>(l->idx), 0, 0, line);
      }
      return;
    }
    const std::int32_t up = find_upval(fs, name);
    if (up >= 0) {
      emit(fs, Op::kUpGet, static_cast<std::int32_t>(target), up, 0, 0, line);
      return;
    }
    emit(fs, Op::kGetGlobal, static_cast<std::int32_t>(target), const_index(fs, Value(name)), 0,
         0, line, new_ic());
  }

  void emit_name_set(FuncState& fs, const std::string& name, std::uint32_t src,
                     std::int32_t line) {
    if (const auto* l = find_local(fs, name)) {
      if (l->is_cell) {
        emit(fs, Op::kCellSet, static_cast<std::int32_t>(l->idx),
             static_cast<std::int32_t>(src), 0, 0, line);
      } else if (l->idx != src) {
        emit(fs, Op::kMove, static_cast<std::int32_t>(l->idx), static_cast<std::int32_t>(src), 0,
             0, line);
      }
      return;
    }
    const std::int32_t up = find_upval(fs, name);
    if (up >= 0) {
      emit(fs, Op::kUpSet, up, static_cast<std::int32_t>(src), 0, 0, line);
      return;
    }
    emit(fs, Op::kSetGlobal, static_cast<std::int32_t>(src), const_index(fs, Value(name)), 0, 0,
         line, new_ic());
  }

  /// True at the top level outside any block: locals there are globals in
  /// the tree-walker (the top-level environment *is* the global table).
  static bool direct_toplevel(const FuncState& fs) { return fs.toplevel && fs.depth == 0; }

  /// Declares a local holding the value currently in `src`. Re-declaring a
  /// name in the same scope reuses its slot (the interpreter overwrites the
  /// same environment entry, which existing closures observe).
  void bind_local(FuncState& fs, const std::string& name, std::uint32_t src, std::int32_t line) {
    for (auto it = fs.locals.rbegin(); it != fs.locals.rend() && it->depth == fs.depth; ++it) {
      if (it->name == name) {
        if (it->is_cell) {
          emit(fs, Op::kCellSet, static_cast<std::int32_t>(it->idx),
               static_cast<std::int32_t>(src), 0, 0, line);
        } else if (it->idx != src) {
          emit(fs, Op::kMove, static_cast<std::int32_t>(it->idx),
               static_cast<std::int32_t>(src), 0, 0, line);
        }
        return;
      }
    }
    FuncState::Local local{name, fs.captured.contains(name), 0, fs.depth};
    if (local.is_cell) {
      local.idx = fs.cell_top++;
      fs.proto.num_cells = std::max(fs.proto.num_cells, fs.cell_top);
      emit(fs, Op::kNewCell, static_cast<std::int32_t>(local.idx), 0, 0, 0, line);
      emit(fs, Op::kCellSet, static_cast<std::int32_t>(local.idx),
           static_cast<std::int32_t>(src), 0, 0, line);
    } else {
      local.idx = src;  // the value's register becomes the local's home
    }
    fs.locals.push_back(std::move(local));
  }

  // --- constant folding ----------------------------------------------------

  std::optional<Value> try_const(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kNil: return Value();
      case ExprKind::kTrue: return Value(true);
      case ExprKind::kFalse: return Value(false);
      case ExprKind::kNumber: return Value(expr.number);
      case ExprKind::kString: return Value(expr.string);
      case ExprKind::kUnary: {
        const auto v = try_const(*expr.rhs);
        if (!v) return std::nullopt;
        const auto type = static_cast<TokenType>(expr.op);
        if (type == TokenType::kNot) return Value(!v->truthy());
        if (type == TokenType::kMinus && v->is_number()) return Value(-v->as_number());
        if (type == TokenType::kHash && v->is_string())
          return Value(static_cast<double>(v->as_string().size()));
        return std::nullopt;  // would error at runtime — keep it there
      }
      case ExprKind::kBinary: {
        const auto type = static_cast<TokenType>(expr.op);
        const auto l = try_const(*expr.lhs);
        if (!l) return std::nullopt;
        if (type == TokenType::kAnd) return l->truthy() ? try_const(*expr.rhs) : l;
        if (type == TokenType::kOr) return l->truthy() ? l : try_const(*expr.rhs);
        const auto r = try_const(*expr.rhs);
        if (!r) return std::nullopt;
        if (type == TokenType::kEq) return Value(l->equals(*r));
        if (type == TokenType::kNe) return Value(!l->equals(*r));
        const bool numeric = l->is_number() && r->is_number();
        const bool string_pair = l->is_string() && r->is_string();
        const bool concat_ok = (l->is_number() || l->is_string()) &&
                               (r->is_number() || r->is_string());
        const bool relational = type == TokenType::kLt || type == TokenType::kLe ||
                                type == TokenType::kGt || type == TokenType::kGe;
        if (type == TokenType::kConcat ? concat_ok : (numeric || (string_pair && relational)))
          return apply_binary_op(expr.op, *l, *r, expr.line);
        return std::nullopt;
      }
      default: return std::nullopt;
    }
  }

  void emit_load_const(FuncState& fs, const Value& v, std::uint32_t target, std::int32_t line) {
    if (v.is_nil()) {
      emit(fs, Op::kLoadNil, static_cast<std::int32_t>(target), 0, 0, 0, line);
    } else if (v.is_bool()) {
      emit(fs, Op::kLoadBool, static_cast<std::int32_t>(target), v.as_bool() ? 1 : 0, 0, 0,
           line);
    } else {
      emit(fs, Op::kLoadConst, static_cast<std::int32_t>(target), const_index(fs, v), 0, 0,
           line);
    }
  }

  // --- expressions ---------------------------------------------------------

  static bool is_multi(const Expr& e) {
    return e.kind == ExprKind::kCall || e.kind == ExprKind::kMethodCall;
  }

  /// Compiles `expr` into an operand register without forcing a copy:
  /// register locals are read in place, everything else lands in a temp.
  std::uint32_t compile_operand(FuncState& fs, const Expr& expr) {
    if (expr.kind == ExprKind::kName) {
      if (const auto* l = find_local(fs, expr.name); l != nullptr && !l->is_cell) return l->idx;
    }
    const auto t = alloc_reg(fs);
    compile_expr_to(fs, expr, t);
    return t;
  }

  void compile_expr_to(FuncState& fs, const Expr& expr, std::uint32_t target) {
    if (const auto folded = try_const(expr)) {
      emit_load_const(fs, *folded, target, expr.line);
      return;
    }
    switch (expr.kind) {
      case ExprKind::kNil:
      case ExprKind::kTrue:
      case ExprKind::kFalse:
      case ExprKind::kNumber:
      case ExprKind::kString:
        // handled by try_const above
        return;
      case ExprKind::kName:
        emit_name_get(fs, expr.name, target, expr.line);
        return;
      case ExprKind::kIndex: {
        const auto saved = fs.reg_top;
        const auto obj = compile_operand(fs, *expr.object);
        if (expr.key->kind == ExprKind::kString) {
          emit(fs, Op::kGetField, static_cast<std::int32_t>(target),
               static_cast<std::int32_t>(obj), const_index(fs, Value(expr.key->string)), 0,
               expr.line, new_ic());
        } else {
          const auto key = compile_operand(fs, *expr.key);
          emit(fs, Op::kGetIndex, static_cast<std::int32_t>(target),
               static_cast<std::int32_t>(obj), static_cast<std::int32_t>(key), 0, expr.line);
        }
        fs.reg_top = saved;
        return;
      }
      case ExprKind::kCall:
      case ExprKind::kMethodCall: {
        const auto saved = fs.reg_top;
        const auto base = compile_call(fs, expr, 1);
        fs.reg_top = saved;
        if (base != target) {
          emit(fs, Op::kMove, static_cast<std::int32_t>(target),
               static_cast<std::int32_t>(base), 0, 0, expr.line);
        }
        return;
      }
      case ExprKind::kFunction: {
        const auto proto = compile_function(expr.function->params, expr.function->body,
                                            expr.function->name, &fs, false);
        emit(fs, Op::kClosure, static_cast<std::int32_t>(target),
             static_cast<std::int32_t>(proto), 0, 0, expr.line);
        return;
      }
      case ExprKind::kUnary: {
        const auto saved = fs.reg_top;
        const auto operand = compile_operand(fs, *expr.rhs);
        const auto type = static_cast<TokenType>(expr.op);
        const Op op = type == TokenType::kNot   ? Op::kNot
                      : type == TokenType::kMinus ? Op::kNeg
                                                  : Op::kLen;
        emit(fs, op, static_cast<std::int32_t>(target), static_cast<std::int32_t>(operand), 0, 0,
             expr.line);
        fs.reg_top = saved;
        return;
      }
      case ExprKind::kBinary: {
        const auto type = static_cast<TokenType>(expr.op);
        if (type == TokenType::kAnd || type == TokenType::kOr) {
          // Value-preserving short circuit: lhs stays in `target` when it
          // decides the result (Lua returns the operand, not a boolean).
          compile_expr_to(fs, *expr.lhs, target);
          const auto jump =
              emit(fs, type == TokenType::kAnd ? Op::kJumpIfFalse : Op::kJumpIfTrue,
                   static_cast<std::int32_t>(target), 0, 0, 0, expr.line);
          compile_expr_to(fs, *expr.rhs, target);
          patch_jump(fs, jump, here(fs));
          return;
        }
        const auto saved = fs.reg_top;
        const auto lhs = compile_operand(fs, *expr.lhs);
        const auto rhs = compile_operand(fs, *expr.rhs);
        emit(fs, binary_opcode(type), static_cast<std::int32_t>(target),
             static_cast<std::int32_t>(lhs), static_cast<std::int32_t>(rhs), 0, expr.line);
        fs.reg_top = saved;
        return;
      }
      case ExprKind::kTable: {
        emit(fs, Op::kNewTable, static_cast<std::int32_t>(target), 0, 0, 0, expr.line);
        double next_index = 1;
        for (const auto& item : expr.items) {
          const auto saved = fs.reg_top;
          const auto key = alloc_reg(fs);
          if (item.name_key.has_value()) {
            emit_load_const(fs, Value(*item.name_key), key, expr.line);
          } else if (item.expr_key) {
            compile_expr_to(fs, *item.expr_key, key);
            // The interpreter validates the key *before* evaluating the value.
            emit(fs, Op::kCheckKey, static_cast<std::int32_t>(key), 0, 0, 0, expr.line);
          } else {
            emit_load_const(fs, Value(next_index), key, expr.line);
            next_index += 1;
          }
          const auto val = alloc_reg(fs);
          compile_expr_to(fs, *item.value, val);
          emit(fs, Op::kTableSet, static_cast<std::int32_t>(target),
               static_cast<std::int32_t>(key), static_cast<std::int32_t>(val), 0, expr.line);
          fs.reg_top = saved;
        }
        return;
      }
    }
  }

  static Op binary_opcode(TokenType type) {
    switch (type) {
      case TokenType::kPlus: return Op::kAdd;
      case TokenType::kMinus: return Op::kSub;
      case TokenType::kStar: return Op::kMul;
      case TokenType::kSlash: return Op::kDiv;
      case TokenType::kPercent: return Op::kMod;
      case TokenType::kCaret: return Op::kPow;
      case TokenType::kConcat: return Op::kConcat;
      case TokenType::kEq: return Op::kEq;
      case TokenType::kNe: return Op::kNe;
      case TokenType::kLt: return Op::kLt;
      case TokenType::kLe: return Op::kLe;
      case TokenType::kGt: return Op::kGt;
      case TokenType::kGe: return Op::kGe;
      default: return Op::kAdd;  // unreachable for parsed programs
    }
  }

  /// Argument that compiles to non-throwing, side-effect-free register
  /// loads: a literal or any name (locals/upvalues/globals all read without
  /// observable effects — an undefined global reads nil). Only such args
  /// allow moving the callee's field resolution to the call instruction.
  static bool effect_free_arg(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNil:
      case ExprKind::kTrue:
      case ExprKind::kFalse:
      case ExprKind::kNumber:
      case ExprKind::kString:
      case ExprKind::kName: return true;
      default: return false;
    }
  }

  /// Compiles a call/method-call. nres >= 0: that many results are placed
  /// at the returned base register. nres == kMultiValues: raw results go
  /// to the frame's pending multi-value buffer.
  std::uint32_t compile_call(FuncState& fs, const Expr& expr, std::int32_t nres) {
    // Direct-call site for `G.f(args...)` where G is a global and every
    // argument is an effect-free load: the generic sequence's only
    // observable step before the call (the field index, which can throw)
    // commutes with the argument loads, so the callee lookup can be fused
    // into the call instruction and served from an inline cache without
    // copying the global table or the callee into registers.
    if (expr.kind == ExprKind::kCall && nres >= 0 && nres <= 0x7fff &&
        expr.callee->kind == ExprKind::kIndex &&
        expr.callee->key->kind == ExprKind::kString &&
        expr.callee->object->kind == ExprKind::kName &&
        find_local(fs, expr.callee->object->name) == nullptr &&
        find_upval(fs, expr.callee->object->name) < 0 &&
        expr.args.size() <= 0x7fff &&
        std::all_of(expr.args.begin(), expr.args.end(),
                    [](const ExprPtr& a) { return effect_free_arg(*a); })) {
      const auto base = alloc_reg(fs);
      const std::int32_t nargs = compile_args(fs, expr.args, base + 1);
      emit(fs, Op::kCallGlobalField, static_cast<std::int32_t>(base),
           const_index(fs, Value(expr.callee->object->name)),
           const_index(fs, Value(expr.callee->key->string)), nargs | (nres << 16),
           expr.line, new_ic());
      if (nres > 0) {
        fs.reg_top = std::max(fs.reg_top, base + static_cast<std::uint32_t>(nres));
        fs.proto.num_regs = std::max(fs.proto.num_regs, fs.reg_top);
      }
      return base;
    }
    const auto base = alloc_reg(fs);
    std::int32_t nargs = 0;
    if (expr.kind == ExprKind::kCall) {
      compile_expr_to(fs, *expr.callee, base);
      nargs = compile_args(fs, expr.args, base + 1);
      emit(fs, Op::kCall, static_cast<std::int32_t>(base), nargs, nres, 0, expr.line);
    } else {
      // Object that is a plain (non-cell) local: skip copying it into the
      // call window — the instruction reads it from its home register. A
      // local read has no effects, so reordering it after the args (or
      // omitting it) is unobservable.
      std::int32_t obj_home = -1;
      if (expr.object->kind == ExprKind::kName) {
        if (const auto* l = find_local(fs, expr.object->name);
            l != nullptr && !l->is_cell && l->idx <= 0x7ffe) {
          obj_home = static_cast<std::int32_t>(l->idx);
        }
      }
      if (obj_home < 0) compile_expr_to(fs, *expr.object, base);
      nargs = compile_args(fs, expr.args, base + 1);
      std::int32_t d = nargs;
      if (obj_home >= 0) {
        if (nargs >= 0) {
          d = nargs | ((obj_home + 1) << 16);
        } else {
          // Multi-arg calls keep the generic encoding: load the object now.
          emit(fs, Op::kMove, static_cast<std::int32_t>(base), obj_home, 0, 0, expr.line);
        }
      }
      emit(fs, Op::kMethodCall, static_cast<std::int32_t>(base),
           const_index(fs, Value(expr.method)), nres, d, expr.line, new_ic());
    }
    if (nres > 0) {
      fs.reg_top = std::max(fs.reg_top, base + static_cast<std::uint32_t>(nres));
      fs.proto.num_regs = std::max(fs.proto.num_regs, fs.reg_top);
    }
    return base;
  }

  /// Compiles arguments into consecutive registers from `at`; returns the
  /// nargs encoding (negative: fixed args plus the pending multi buffer).
  std::int32_t compile_args(FuncState& fs, const std::vector<ExprPtr>& args, std::uint32_t at) {
    if (args.empty()) return 0;
    const std::size_t n = args.size();
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto r = alloc_reg(fs);
      (void)r;  // regs are consecutive: at, at+1, ...
      compile_expr_to(fs, *args[i], at + static_cast<std::uint32_t>(i));
      fs.reg_top = at + static_cast<std::uint32_t>(i) + 1;
    }
    const Expr& last = *args[n - 1];
    if (is_multi(last)) {
      const auto saved = fs.reg_top;
      compile_call(fs, last, kMultiValues);
      fs.reg_top = saved;
      return -static_cast<std::int32_t>(n);  // (n-1) fixed + pending
    }
    const auto r = alloc_reg(fs);
    (void)r;
    compile_expr_to(fs, last, at + static_cast<std::uint32_t>(n - 1));
    fs.reg_top = at + static_cast<std::uint32_t>(n);
    return static_cast<std::int32_t>(n);
  }

  /// Compiles an expression list so exactly `want` values land in
  /// registers [dest, dest + want) — the interpreter's evaluate_list with
  /// multi-value expansion of the final expression.
  void compile_explist(FuncState& fs, const std::vector<ExprPtr>& exprs, std::uint32_t dest,
                       std::uint32_t want, std::int32_t line) {
    if (exprs.empty()) {
      for (std::uint32_t j = 0; j < want; ++j)
        emit(fs, Op::kLoadNil, static_cast<std::int32_t>(dest + j), 0, 0, 0, line);
      return;
    }
    const std::size_t n = exprs.size();
    for (std::size_t i = 0; i < n; ++i) {
      const bool last = i + 1 == n;
      const auto slot = dest + static_cast<std::uint32_t>(i);
      if (!last) {
        if (i < want) {
          compile_expr_to(fs, *exprs[i], slot);
          fs.reg_top = std::max(fs.reg_top, slot + 1);
        } else {
          // Extra expressions are still evaluated for their side effects.
          const auto saved = fs.reg_top;
          const auto t = alloc_reg(fs);
          compile_expr_to(fs, *exprs[i], t);
          fs.reg_top = saved;
        }
        continue;
      }
      if (is_multi(*exprs[i])) {
        const auto saved = fs.reg_top;
        compile_call(fs, *exprs[i], kMultiValues);
        fs.reg_top = saved;
        if (i < want) {
          emit(fs, Op::kAdjust, static_cast<std::int32_t>(slot),
               static_cast<std::int32_t>(want - i), 0, 0, line);
          fs.reg_top = std::max(fs.reg_top, dest + want);
        } else {
          emit(fs, Op::kAdjust, 0, 0, 0, 0, line);  // drop pending results
        }
      } else {
        if (i < want) {
          compile_expr_to(fs, *exprs[i], slot);
          fs.reg_top = std::max(fs.reg_top, slot + 1);
        } else {
          const auto saved = fs.reg_top;
          const auto t = alloc_reg(fs);
          compile_expr_to(fs, *exprs[i], t);
          fs.reg_top = saved;
        }
        for (std::size_t j = n; j < want; ++j)
          emit(fs, Op::kLoadNil, static_cast<std::int32_t>(dest + j), 0, 0, 0, line);
      }
    }
  }

  // --- statements ----------------------------------------------------------

  void compile_block(FuncState& fs, const Block& block) {
    for (const auto& stmt : block) compile_stmt(fs, *stmt);
  }

  void compile_scoped_block(FuncState& fs, const Block& block) {
    const auto scope = open_scope(fs);
    compile_block(fs, block);
    close_scope(fs, scope);
  }

  void compile_stmt(FuncState& fs, const Stmt& stmt) {
    // Mirrors the interpreter's count_step at execute() entry: one budget
    // tick per executed statement, before its effects.
    emit(fs, Op::kCheckStep, 0, 0, 0, 0, stmt.line);
    switch (stmt.kind) {
      case StmtKind::kLocal: compile_local(fs, stmt); return;
      case StmtKind::kAssign: compile_assign(fs, stmt); return;
      case StmtKind::kExpr: {
        const auto saved = fs.reg_top;
        if (is_multi(*stmt.expr)) {
          compile_call(fs, *stmt.expr, 0);  // results discarded
        } else {
          const auto t = alloc_reg(fs);
          compile_expr_to(fs, *stmt.expr, t);
        }
        fs.reg_top = saved;
        return;
      }
      case StmtKind::kIf: compile_if(fs, stmt); return;
      case StmtKind::kWhile: compile_while(fs, stmt); return;
      case StmtKind::kRepeat: compile_repeat(fs, stmt); return;
      case StmtKind::kNumericFor: compile_numeric_for(fs, stmt); return;
      case StmtKind::kGenericFor: compile_generic_for(fs, stmt); return;
      case StmtKind::kFunctionDecl: compile_function_decl(fs, stmt); return;
      case StmtKind::kReturn: compile_return(fs, stmt); return;
      case StmtKind::kBreak: {
        if (!fs.breaks.empty()) {
          fs.breaks.back().push_back(emit(fs, Op::kJump, 0, 0, 0, 0, stmt.line));
        } else {
          // break outside a loop unwinds the function (the tree-walker's
          // break flow escaping a body yields an empty return).
          emit(fs, Op::kReturn, 0, 0, 0, 0, stmt.line);
        }
        return;
      }
      case StmtKind::kDo: compile_scoped_block(fs, stmt.body); return;
    }
  }

  void compile_local(FuncState& fs, const Stmt& stmt) {
    const auto n = static_cast<std::uint32_t>(stmt.names.size());
    const auto dest = alloc_regs(fs, n);
    compile_explist(fs, stmt.exprs, dest, n, stmt.line);
    if (direct_toplevel(fs)) {
      // The top-level environment is the global table in the tree-walker.
      for (std::uint32_t i = 0; i < n; ++i) {
        emit(fs, Op::kSetGlobal, static_cast<std::int32_t>(dest + i),
             const_index(fs, Value(stmt.names[i])), 0, 0, stmt.line, new_ic());
      }
      fs.reg_top = dest;
      return;
    }
    for (std::uint32_t i = 0; i < n; ++i) bind_local(fs, stmt.names[i], dest + i, stmt.line);
    fs.reg_top = dest + n;
  }

  void compile_assign(FuncState& fs, const Stmt& stmt) {
    const auto saved = fs.reg_top;
    const auto n = static_cast<std::uint32_t>(stmt.targets.size());
    const auto vals = alloc_regs(fs, n);
    compile_explist(fs, stmt.exprs, vals, n, stmt.line);
    for (std::uint32_t i = 0; i < n; ++i) {
      const Expr& target = *stmt.targets[i];
      if (target.kind == ExprKind::kName) {
        emit_name_set(fs, target.name, vals + i, target.line);
        continue;
      }
      const auto inner = fs.reg_top;
      const auto obj = compile_operand(fs, *target.object);
      const auto key = compile_operand(fs, *target.key);
      emit(fs, Op::kSetIndex, static_cast<std::int32_t>(obj), static_cast<std::int32_t>(key),
           static_cast<std::int32_t>(vals + i), 0, target.line);
      fs.reg_top = inner;
    }
    fs.reg_top = saved;
  }

  void compile_if(FuncState& fs, const Stmt& stmt) {
    std::vector<std::size_t> end_jumps;
    for (const auto& branch : stmt.branches) {
      const auto saved = fs.reg_top;
      const auto cond = compile_operand(fs, *branch.condition);
      const auto skip = emit(fs, Op::kJumpIfFalse, static_cast<std::int32_t>(cond), 0, 0, 0,
                             branch.condition->line);
      fs.reg_top = saved;
      compile_scoped_block(fs, branch.body);
      end_jumps.push_back(emit(fs, Op::kJump, 0, 0, 0, 0, stmt.line));
      patch_jump(fs, skip, here(fs));
    }
    if (stmt.has_else) compile_scoped_block(fs, stmt.else_body);
    for (const auto j : end_jumps) patch_jump(fs, j, here(fs));
  }

  void compile_while(FuncState& fs, const Stmt& stmt) {
    const auto top = here(fs);
    const auto saved = fs.reg_top;
    const auto cond = compile_operand(fs, *stmt.condition);
    const auto exit_jump =
        emit(fs, Op::kJumpIfFalse, static_cast<std::int32_t>(cond), 0, 0, 0, stmt.line);
    fs.reg_top = saved;
    emit(fs, Op::kCheckStep, 0, 0, 0, 0, stmt.line);  // per-iteration tick
    fs.breaks.emplace_back();
    compile_scoped_block(fs, stmt.body);
    emit(fs, Op::kJump, static_cast<std::int32_t>(top), 0, 0, 0, stmt.line);
    patch_jump(fs, exit_jump, here(fs));
    for (const auto j : fs.breaks.back()) patch_jump(fs, j, here(fs));
    fs.breaks.pop_back();
  }

  void compile_repeat(FuncState& fs, const Stmt& stmt) {
    const auto top = here(fs);
    emit(fs, Op::kCheckStep, 0, 0, 0, 0, stmt.line);
    fs.breaks.emplace_back();
    const auto scope = open_scope(fs);
    compile_block(fs, stmt.body);
    // `until` sees the loop body's locals (Lua scoping rule).
    const auto cond = compile_operand(fs, *stmt.condition);
    emit(fs, Op::kJumpIfFalse, static_cast<std::int32_t>(cond),
         static_cast<std::int32_t>(top), 0, 0, stmt.line);
    close_scope(fs, scope);
    for (const auto j : fs.breaks.back()) patch_jump(fs, j, here(fs));
    fs.breaks.pop_back();
  }

  void compile_numeric_for(FuncState& fs, const Stmt& stmt) {
    const auto outer = fs.reg_top;
    // Internal i/stop/step triple survives the whole loop; the user loop
    // variable is a separate per-iteration local (mutating it must not
    // steer the iteration — the interpreter iterates on its own double).
    const auto base = alloc_regs(fs, 3);
    // Bounds are converted as they are evaluated, matching the
    // interpreter's evaluate(start).as_number() sequencing: a non-number
    // start throws before the stop expression runs.
    compile_expr_to(fs, *stmt.for_start, base);
    emit(fs, Op::kToNum, static_cast<std::int32_t>(base), 0, 0, 0, stmt.line);
    compile_expr_to(fs, *stmt.for_stop, base + 1);
    emit(fs, Op::kToNum, static_cast<std::int32_t>(base + 1), 0, 0, 0, stmt.line);
    if (stmt.for_step) {
      compile_expr_to(fs, *stmt.for_step, base + 2);
      emit(fs, Op::kToNum, static_cast<std::int32_t>(base + 2), 0, 0, 0, stmt.line);
    } else {
      emit_load_const(fs, Value(1.0), base + 2, stmt.line);
    }
    emit(fs, Op::kForPrep, static_cast<std::int32_t>(base), 0, 0, 0, stmt.line);
    // The test is a trace anchor: its IC slot holds the back-edge hotness
    // counter and, once recorded, the installed loop specialization.
    const auto test = emit(fs, Op::kForTest, static_cast<std::int32_t>(base), 0, 0, 0,
                           stmt.line, new_ic());
    emit(fs, Op::kCheckStep, 0, 0, 0, 0, stmt.line);
    fs.breaks.emplace_back();
    const auto scope = open_scope(fs);
    const auto var = alloc_reg(fs);
    emit(fs, Op::kMove, static_cast<std::int32_t>(var), static_cast<std::int32_t>(base), 0, 0,
         stmt.line);
    bind_local(fs, stmt.loop_var, var, stmt.line);
    compile_block(fs, stmt.body);
    close_scope(fs, scope);
    emit(fs, Op::kForNext, static_cast<std::int32_t>(base), static_cast<std::int32_t>(test), 0,
         0, stmt.line);
    patch_jump(fs, test, here(fs));
    for (const auto j : fs.breaks.back()) patch_jump(fs, j, here(fs));
    fs.breaks.pop_back();
    fs.reg_top = outer;
  }

  void compile_generic_for(FuncState& fs, const Stmt& stmt) {
    const auto outer = fs.reg_top;
    const auto nres = static_cast<std::int32_t>(std::max<std::size_t>(stmt.names.size(), 1));
    // f, s, ctrl persist across iterations; the call window w holds the
    // per-round f(s, ctrl) invocation and its results.
    const auto iter = alloc_regs(fs, 3);
    compile_explist(fs, stmt.exprs, iter, 3, stmt.line);
    const auto w = alloc_regs(fs, static_cast<std::uint32_t>(nres) + 2);
    const auto top = here(fs);
    // One fused instruction per iteration: budget tick, f(s, ctrl) call
    // leaving f/s/ctrl in place, exit-if-nil (d: target, patched below) and
    // the ctrl update — the kCheckStep/kJumpIfNil/kMove sequence it
    // replaces, with identical observable order.
    // Also a trace anchor (see kForTest): the IC slot carries the hotness
    // counter and any installed field-kernel specialization.
    const auto forin_call =
        emit(fs, Op::kForInCall, static_cast<std::int32_t>(iter), static_cast<std::int32_t>(w),
             nres, 0, stmt.line, new_ic());
    fs.breaks.emplace_back();
    const auto scope = open_scope(fs);
    for (std::size_t i = 0; i < stmt.names.size(); ++i) {
      // Loop variables live directly in the result window: each iteration's
      // store refreshes them, and a body assignment only affects that
      // iteration (ctrl is already saved). Captured names still get a fresh
      // cell per iteration via bind_local.
      bind_local(fs, stmt.names[i], w + static_cast<std::uint32_t>(i), stmt.line);
    }
    compile_block(fs, stmt.body);
    close_scope(fs, scope);
    emit(fs, Op::kJump, static_cast<std::int32_t>(top), 0, 0, 0, stmt.line);
    fs.proto.code[forin_call].d = static_cast<std::int32_t>(here(fs));
    for (const auto j : fs.breaks.back()) patch_jump(fs, j, here(fs));
    fs.breaks.pop_back();
    fs.reg_top = outer;
  }

  void compile_function_decl(FuncState& fs, const Stmt& stmt) {
    const auto saved = fs.reg_top;
    if (stmt.is_local_function && !direct_toplevel(fs)) {
      // Declare first so the body's self-reference resolves to the local
      // (recursion); the cell exists before the closure captures it.
      const auto home = alloc_reg(fs);
      emit(fs, Op::kLoadNil, static_cast<std::int32_t>(home), 0, 0, 0, stmt.line);
      bind_local(fs, stmt.func_path[0], home, stmt.line);
      const auto proto = compile_function(stmt.function->params, stmt.function->body,
                                          stmt.function->name, &fs, false);
      const auto t = alloc_reg(fs);
      emit(fs, Op::kClosure, static_cast<std::int32_t>(t), static_cast<std::int32_t>(proto), 0,
           0, stmt.line);
      emit_name_set(fs, stmt.func_path[0], t, stmt.line);
      fs.reg_top = saved + 1;  // keep the local's home register alive
      return;
    }
    const auto proto = compile_function(stmt.function->params, stmt.function->body,
                                        stmt.function->name, &fs, false);
    const auto t = alloc_reg(fs);
    emit(fs, Op::kClosure, static_cast<std::int32_t>(t), static_cast<std::int32_t>(proto), 0, 0,
         stmt.line);
    if (stmt.is_local_function || stmt.func_path.size() == 1) {
      // Non-local single-name declarations assign through the scope chain
      // and fall back to a global — exactly emit_name_set's resolution.
      // (At the direct top level both forms write the global table.)
      emit_name_set(fs, stmt.func_path[0], t, stmt.line);
    } else {
      const auto container = alloc_reg(fs);
      emit_name_get(fs, stmt.func_path[0], container, stmt.line);
      for (std::size_t i = 1; i + 1 < stmt.func_path.size(); ++i) {
        emit(fs, Op::kPathMid, static_cast<std::int32_t>(container),
             static_cast<std::int32_t>(container), const_index(fs, Value(stmt.func_path[i])), 0,
             stmt.line);
      }
      emit(fs, Op::kPathSet, static_cast<std::int32_t>(container),
           const_index(fs, Value(stmt.func_path.back())), static_cast<std::int32_t>(t), 0,
           stmt.line);
    }
    fs.reg_top = saved;
  }

  void compile_return(FuncState& fs, const Stmt& stmt) {
    const auto saved = fs.reg_top;
    const std::size_t n = stmt.exprs.size();
    if (n == 0) {
      emit(fs, Op::kReturn, 0, 0, 0, 0, stmt.line);
      return;
    }
    const auto base = fs.reg_top;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto r = alloc_reg(fs);
      compile_expr_to(fs, *stmt.exprs[i], r);
      fs.reg_top = base + static_cast<std::uint32_t>(i) + 1;
    }
    const Expr& last = *stmt.exprs[n - 1];
    if (is_multi(last)) {
      const auto inner = fs.reg_top;
      compile_call(fs, last, kMultiValues);
      fs.reg_top = inner;
      emit(fs, Op::kReturn, static_cast<std::int32_t>(base),
           -static_cast<std::int32_t>(n), 0, 0, stmt.line);
    } else {
      const auto r = alloc_reg(fs);
      compile_expr_to(fs, last, r);
      emit(fs, Op::kReturn, static_cast<std::int32_t>(base), static_cast<std::int32_t>(n), 0, 0,
           stmt.line);
    }
    fs.reg_top = saved;
  }
};

}  // namespace

std::shared_ptr<const Chunk> compile_program(const Program& program) {
  auto chunk = std::make_shared<Chunk>();
  Compiler compiler(*chunk);
  chunk->top_level = compiler.compile_function({}, program.block, "main", nullptr, true);
  return chunk;
}

const char* op_name(Op op) {
  static constexpr const char* kNames[] = {
      "LOADK",   "LOADNIL", "LOADBOOL", "MOVE",    "GETGLOBAL", "SETGLOBAL", "NEWCELL",
      "CELLGET", "CELLSET", "UPGET",    "UPSET",   "ADD",       "SUB",       "MUL",
      "DIV",     "MOD",     "POW",      "CONCAT",  "EQ",        "NE",        "LT",
      "LE",      "GT",      "GE",       "NOT",     "NEG",       "LEN",       "JMP",
      "JF",      "JT",      "JNIL",     "GETIDX",  "GETFIELD",  "SETIDX",    "NEWTABLE",
      "CHECKKEY", "TSET",   "CALL",     "MCALL",   "GFCALL",    "FORINCALL", "RET",
      "ADJUST",   "CLOSURE",
      "TONUM",   "FORPREP", "FORTEST",  "FORNEXT", "PATHMID",   "PATHSET",   "CHECKSTEP",
  };
  return kNames[static_cast<int>(op)];
}

namespace {

// Constant operand rendering: strings quoted so `LOADK r1 <- "src"` and
// `LOADK r1 <- 26` are distinguishable in listings.
std::string const_repr(const FunctionProto& proto, std::int32_t index) {
  if (index < 0 || static_cast<std::size_t>(index) >= proto.consts.size()) {
    return "k?" + std::to_string(index);
  }
  const Value& v = proto.consts[static_cast<std::size_t>(index)];
  if (v.is_string()) return "\"" + v.as_string() + "\"";
  return v.to_display_string();
}

// nargs/nres operand encoding (kMultiValues protocol, see compiler.hpp).
std::string count_repr(std::int32_t enc) {
  if (enc >= 0) return std::to_string(enc);
  return std::to_string(-enc - 1) + "+multi";
}

}  // namespace

std::string disassemble_instr(const FunctionProto& proto, const Instr& ins) {
  std::ostringstream os;
  os << op_name(ins.op) << "\t";
  switch (ins.op) {
    case Op::kLoadConst:
      os << "r" << ins.a << " <- " << const_repr(proto, ins.b);
      break;
    case Op::kGetGlobal:
      os << "r" << ins.a << " <- " << const_repr(proto, ins.b) << " [ic " << ins.ic << "]";
      break;
    case Op::kSetGlobal:
      os << const_repr(proto, ins.b) << " <- r" << ins.a << " [ic " << ins.ic << "]";
      break;
    case Op::kGetField:
      os << "r" << ins.a << " <- r" << ins.b << "." << const_repr(proto, ins.c) << " [ic "
         << ins.ic << "]";
      break;
    case Op::kCall:
      os << "r" << ins.a << " nargs=" << count_repr(ins.b) << " nres=" << count_repr(ins.c);
      break;
    case Op::kMethodCall: {
      // In-place receiver encoding: d >= 0 with a non-zero high half names
      // the object's home register; otherwise the object sits in r[a].
      const std::int32_t obj_hi = ins.d >= 0 ? (ins.d >> 16) : 0;
      const std::int32_t nargs = obj_hi != 0 ? (ins.d & 0xffff) : ins.d;
      const std::int32_t obj = obj_hi != 0 ? obj_hi - 1 : ins.a;
      os << "r" << obj << ":" << const_repr(proto, ins.b) << " nargs=" << count_repr(nargs)
         << " nres=" << ins.c << " -> r" << ins.a << " [ic " << ins.ic << "]";
      break;
    }
    case Op::kCallGlobalField:
      os << proto.consts[static_cast<std::size_t>(ins.b)].as_string() << "."
         << proto.consts[static_cast<std::size_t>(ins.c)].as_string()
         << " nargs=" << (ins.d & 0xffff) << " nres=" << (ins.d >> 16) << " -> r" << ins.a
         << " [ic " << ins.ic << "]";
      break;
    case Op::kForInCall:
      os << "iter=r" << ins.a << " vars=r" << ins.b << "..r" << (ins.b + ins.c - 1)
         << " exit=" << ins.d << " [ic " << ins.ic << "]";
      break;
    case Op::kForTest:
      os << "i=r" << ins.a << " exit=" << ins.b << " [ic " << ins.ic << "]";
      break;
    case Op::kForNext:
      os << "i=r" << ins.a << " -> " << ins.b;
      break;
    case Op::kJump:
      os << "-> " << ins.a;
      break;
    case Op::kJumpIfFalse:
    case Op::kJumpIfTrue:
    case Op::kJumpIfNil:
      os << "r" << ins.a << " -> " << ins.b;
      break;
    default:
      os << ins.a << " " << ins.b << " " << ins.c << " " << ins.d;
      break;
  }
  return os.str();
}

std::string disassemble(const Chunk& chunk) {
  std::ostringstream os;
  for (std::size_t p = 0; p < chunk.protos.size(); ++p) {
    const auto& proto = chunk.protos[p];
    os << "proto " << p << " <" << proto.name << "> params=" << proto.num_params
       << " regs=" << proto.num_regs << " cells=" << proto.num_cells
       << " upvals=" << proto.upvals.size() << "\n";
    for (std::size_t i = 0; i < proto.code.size(); ++i) {
      os << "  " << i << "\t" << disassemble_instr(proto, proto.code[i]) << "\n";
    }
  }
  return os.str();
}

}  // namespace moongen::script
