#include "script/interpreter.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <random>
#include <thread>

#include "script/compiler.hpp"
#include "script/lexer.hpp"
#include "script/vm.hpp"

namespace moongen::script {

// ---------------------------------------------------------------------------
// Environment
// ---------------------------------------------------------------------------

Value Environment::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  return parent_ ? parent_->get(name) : Value();
}

bool Environment::assign(const std::string& name, const Value& value) {
  const auto it = values_.find(name);
  if (it != values_.end()) {
    it->second = value;
    return true;
  }
  return parent_ ? parent_->assign(name, value) : false;
}

// ---------------------------------------------------------------------------
// Argument helpers
// ---------------------------------------------------------------------------

double arg_number(const std::vector<Value>& args, std::size_t index, const char* what) {
  if (index >= args.size() || !args[index].is_number())
    throw ScriptError(std::string(what) + ": argument " + std::to_string(index + 1) +
                      " must be a number");
  return args[index].as_number();
}

std::string arg_string(const std::vector<Value>& args, std::size_t index, const char* what) {
  if (index >= args.size() || !args[index].is_string())
    throw ScriptError(std::string(what) + ": argument " + std::to_string(index + 1) +
                      " must be a string");
  return args[index].as_string();
}

std::shared_ptr<Table> arg_table(const std::vector<Value>& args, std::size_t index,
                                 const char* what) {
  if (index >= args.size() || !args[index].is_table())
    throw ScriptError(std::string(what) + ": argument " + std::to_string(index + 1) +
                      " must be a table");
  return args[index].as_table();
}

std::shared_ptr<UserData> arg_userdata(const std::vector<Value>& args, std::size_t index,
                                       const char* what, const MethodTable* expected) {
  if (index >= args.size() || !args[index].is_userdata())
    throw ScriptError(std::string(what) + ": argument " + std::to_string(index + 1) +
                      " must be userdata");
  auto ud = args[index].as_userdata();
  if (expected != nullptr && ud->methods() != expected)
    throw ScriptError(std::string(what) + ": argument " + std::to_string(index + 1) +
                      " must be " + expected->type_name + ", got " + ud->type_name());
  return ud;
}

Value make_native(std::string name, NativeFn fn) {
  return Value(
      std::make_shared<NativeFunction>(NativeFunction{std::move(name), std::move(fn), nullptr}));
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

Interpreter::Interpreter(std::shared_ptr<const Program> program)
    : program_(std::move(program)), globals_(std::make_shared<Environment>()) {
  install_base_library();
}

Interpreter::~Interpreter() = default;

bool Interpreter::default_tree_walk() {
  const char* env = std::getenv("MOONGEN_SCRIPT_TREEWALK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

bool Interpreter::default_trace() {
  const char* env = std::getenv("MOONGEN_SCRIPT_NOTRACE");
  return !(env != nullptr && env[0] != '\0' && env[0] != '0');
}

void Interpreter::ensure_compiled() {
  if (!chunk_) chunk_ = compile_program(*program_);
}

Vm& Interpreter::vm() {
  if (!vm_) vm_ = std::make_unique<Vm>(*this);
  return *vm_;
}

std::vector<Value> Interpreter::call_compiled(const std::shared_ptr<VmClosure>& closure,
                                              std::vector<Value>& args) {
  return vm().call_closure(closure, args);
}

void Interpreter::set_global(const std::string& name, Value value) {
  globals_->declare(name, std::move(value));
}

Value Interpreter::get_global(const std::string& name) const { return globals_->get(name); }

void Interpreter::run() {
  if (tree_walk_) {
    const auto flow = execute_block(program_->block, globals_);
    (void)flow;
    return;
  }
  ensure_compiled();
  vm().run_toplevel(chunk_);
}

std::vector<Value> Interpreter::call_global(const std::string& name, std::vector<Value> args) {
  const Value fn = globals_->get(name);
  if (!fn.is_callable()) throw ScriptError("global '" + name + "' is not a function");
  return call(fn, std::move(args));
}

std::vector<Value> Interpreter::call(const Value& callee, std::vector<Value> args, int line) {
  if (const auto* nf = callee.native()) return (*nf)->fn(*this, args);
  if (const auto* sf = callee.script_fn()) {
    const auto& fn = **sf;
    auto env = std::make_shared<Environment>(fn.closure);
    for (std::size_t i = 0; i < fn.decl->params.size(); ++i) {
      env->declare(fn.decl->params[i], i < args.size() ? args[i] : Value());
    }
    auto flow = execute_block(fn.decl->body, env);
    if (flow.kind == Flow::Kind::kReturn) return std::move(flow.values);
    return {};
  }
  throw ScriptError("attempt to call a " + callee.type_name() + " value", line);
}

void Interpreter::step_budget_exceeded(int line) {
  throw ScriptError("script exceeded its execution budget", line);
}

// --- statements -------------------------------------------------------------

Interpreter::Flow Interpreter::execute_block(const Block& block,
                                             const std::shared_ptr<Environment>& env) {
  for (const auto& stmt : block) {
    auto flow = execute(*stmt, env);
    if (flow.kind != Flow::Kind::kNormal) return flow;
  }
  return {};
}

Interpreter::Flow Interpreter::execute(const Stmt& stmt, const std::shared_ptr<Environment>& env) {
  count_step(stmt.line);
  switch (stmt.kind) {
    case StmtKind::kLocal: {
      auto values = evaluate_list(stmt.exprs, env);
      for (std::size_t i = 0; i < stmt.names.size(); ++i) {
        env->declare(stmt.names[i], i < values.size() ? values[i] : Value());
      }
      return {};
    }
    case StmtKind::kAssign: {
      auto values = evaluate_list(stmt.exprs, env);
      for (std::size_t i = 0; i < stmt.targets.size(); ++i) {
        assign_target(*stmt.targets[i], i < values.size() ? values[i] : Value(), env);
      }
      return {};
    }
    case StmtKind::kExpr: {
      (void)evaluate_multi(*stmt.expr, env);
      return {};
    }
    case StmtKind::kIf: {
      for (const auto& branch : stmt.branches) {
        if (evaluate(*branch.condition, env).truthy()) {
          auto scope = std::make_shared<Environment>(env);
          return execute_block(branch.body, scope);
        }
      }
      if (stmt.has_else) {
        auto scope = std::make_shared<Environment>(env);
        return execute_block(stmt.else_body, scope);
      }
      return {};
    }
    case StmtKind::kWhile: {
      while (evaluate(*stmt.condition, env).truthy()) {
        count_step(stmt.line);
        auto scope = std::make_shared<Environment>(env);
        auto flow = execute_block(stmt.body, scope);
        if (flow.kind == Flow::Kind::kBreak) break;
        if (flow.kind == Flow::Kind::kReturn) return flow;
      }
      return {};
    }
    case StmtKind::kRepeat: {
      while (true) {
        count_step(stmt.line);
        auto scope = std::make_shared<Environment>(env);
        auto flow = execute_block(stmt.body, scope);
        if (flow.kind == Flow::Kind::kBreak) break;
        if (flow.kind == Flow::Kind::kReturn) return flow;
        // `until` sees the loop body's locals (Lua scoping rule).
        if (evaluate(*stmt.condition, scope).truthy()) break;
      }
      return {};
    }
    case StmtKind::kNumericFor: {
      const double start = evaluate(*stmt.for_start, env).as_number();
      const double stop = evaluate(*stmt.for_stop, env).as_number();
      const double step = stmt.for_step ? evaluate(*stmt.for_step, env).as_number() : 1.0;
      if (step == 0) throw ScriptError("for step must not be zero", stmt.line);
      for (double i = start; step > 0 ? i <= stop : i >= stop; i += step) {
        count_step(stmt.line);
        auto scope = std::make_shared<Environment>(env);
        scope->declare(stmt.loop_var, Value(i));
        auto flow = execute_block(stmt.body, scope);
        if (flow.kind == Flow::Kind::kBreak) break;
        if (flow.kind == Flow::Kind::kReturn) return flow;
      }
      return {};
    }
    case StmtKind::kGenericFor: {
      // for n1, n2 in explist do ... end — the Lua iterator protocol:
      // explist evaluates to (f, s, ctrl); each round calls f(s, ctrl).
      auto iter = evaluate_list(stmt.exprs, env);
      iter.resize(3);
      const Value f = iter[0];
      const Value s = iter[1];
      Value ctrl = iter[2];
      while (true) {
        count_step(stmt.line);
        auto results = call(f, {s, ctrl}, stmt.line);
        if (results.empty() || results[0].is_nil()) break;
        ctrl = results[0];
        auto scope = std::make_shared<Environment>(env);
        for (std::size_t i = 0; i < stmt.names.size(); ++i) {
          scope->declare(stmt.names[i], i < results.size() ? results[i] : Value());
        }
        auto flow = execute_block(stmt.body, scope);
        if (flow.kind == Flow::Kind::kBreak) break;
        if (flow.kind == Flow::Kind::kReturn) return flow;
      }
      return {};
    }
    case StmtKind::kFunctionDecl: {
      auto fn = std::make_shared<ScriptFunction>();
      fn->decl = stmt.function.get();
      fn->closure = env;
      fn->name = stmt.function->name;
      const Value fn_value{fn};
      if (stmt.is_local_function || stmt.func_path.size() == 1) {
        if (stmt.is_local_function) {
          env->declare(stmt.func_path[0], fn_value);
        } else if (!env->assign(stmt.func_path[0], fn_value)) {
          globals_->declare(stmt.func_path[0], fn_value);
        }
      } else {
        // function a.b.c(...) — walk the table path.
        Value container = env->get(stmt.func_path[0]);
        for (std::size_t i = 1; i + 1 < stmt.func_path.size(); ++i) {
          if (!container.is_table())
            throw ScriptError("cannot declare function in non-table", stmt.line);
          container = container.as_table()->get(Table::Key{stmt.func_path[i]});
        }
        if (!container.is_table())
          throw ScriptError("cannot declare function in non-table", stmt.line);
        container.as_table()->set(Table::Key{stmt.func_path.back()}, fn_value);
      }
      return {};
    }
    case StmtKind::kReturn: {
      Flow flow;
      flow.kind = Flow::Kind::kReturn;
      flow.values = evaluate_list(stmt.exprs, env);
      return flow;
    }
    case StmtKind::kBreak: {
      Flow flow;
      flow.kind = Flow::Kind::kBreak;
      return flow;
    }
    case StmtKind::kDo: {
      auto scope = std::make_shared<Environment>(env);
      return execute_block(stmt.body, scope);
    }
  }
  return {};
}

// --- expressions -------------------------------------------------------------

std::vector<Value> Interpreter::evaluate_list(const std::vector<ExprPtr>& exprs,
                                              const std::shared_ptr<Environment>& env) {
  std::vector<Value> values;
  for (std::size_t i = 0; i < exprs.size(); ++i) {
    if (i + 1 == exprs.size()) {
      // The last expression expands all of its results.
      auto multi = evaluate_multi(*exprs[i], env);
      for (auto& v : multi) values.push_back(std::move(v));
    } else {
      values.push_back(evaluate(*exprs[i], env));
    }
  }
  return values;
}

std::vector<Value> Interpreter::evaluate_multi(const Expr& expr,
                                               const std::shared_ptr<Environment>& env) {
  if (expr.kind == ExprKind::kCall) {
    const Value callee = evaluate(*expr.callee, env);
    auto args = evaluate_list(expr.args, env);
    return call(callee, std::move(args), expr.line);
  }
  if (expr.kind == ExprKind::kMethodCall) {
    const Value object = evaluate(*expr.object, env);
    auto args = evaluate_list(expr.args, env);
    if (object.is_userdata()) {
      auto& ud = *object.as_userdata();
      const auto it = ud.methods()->methods.find(expr.method);
      if (it == ud.methods()->methods.end())
        throw ScriptError("no method '" + expr.method + "' on " + ud.type_name(), expr.line);
      return it->second(*this, ud, args);
    }
    if (object.is_table()) {
      const Value fn = object.as_table()->get(Table::Key{expr.method});
      args.insert(args.begin(), object);  // self
      return call(fn, std::move(args), expr.line);
    }
    throw ScriptError("attempt to call method '" + expr.method + "' on a " +
                          object.type_name() + " value",
                      expr.line);
  }
  return {evaluate(expr, env)};
}

Value Interpreter::evaluate(const Expr& expr, const std::shared_ptr<Environment>& env) {
  switch (expr.kind) {
    case ExprKind::kNil: return Value();
    case ExprKind::kTrue: return Value(true);
    case ExprKind::kFalse: return Value(false);
    case ExprKind::kNumber: return Value(expr.number);
    case ExprKind::kString: return Value(expr.string);
    case ExprKind::kName: return env->get(expr.name);
    case ExprKind::kIndex: {
      const Value object = evaluate(*expr.object, env);
      const Value key = evaluate(*expr.key, env);
      return index_value(object, key, expr.line);
    }
    case ExprKind::kCall:
    case ExprKind::kMethodCall: {
      auto results = evaluate_multi(expr, env);
      return results.empty() ? Value() : results[0];
    }
    case ExprKind::kFunction: {
      auto fn = std::make_shared<ScriptFunction>();
      fn->decl = expr.function.get();
      fn->closure = env;
      fn->name = expr.function->name;
      return Value(fn);
    }
    case ExprKind::kUnary: {
      if (expr.op == static_cast<int>(TokenType::kNot))
        return Value(!evaluate(*expr.rhs, env).truthy());
      const Value v = evaluate(*expr.rhs, env);
      if (expr.op == static_cast<int>(TokenType::kMinus)) {
        if (!v.is_number()) throw ScriptError("attempt to negate a " + v.type_name(), expr.line);
        return Value(-v.as_number());
      }
      // '#': length of table array part or string.
      if (v.is_string()) return Value(static_cast<double>(v.as_string().size()));
      if (v.is_table()) return Value(static_cast<double>(v.as_table()->array_size()));
      if (v.is_userdata()) {
        auto& ud = *v.as_userdata();
        const auto it = ud.methods()->methods.find("__len");
        if (it != ud.methods()->methods.end()) {
          std::vector<Value> no_args;
          auto r = it->second(*this, ud, no_args);
          return r.empty() ? Value() : r[0];
        }
      }
      throw ScriptError("attempt to get length of a " + v.type_name(), expr.line);
    }
    case ExprKind::kBinary:
      return binary_op(expr.op, *expr.lhs, *expr.rhs, env, expr.line);
    case ExprKind::kTable: {
      auto table = std::make_shared<Table>();
      double next_index = 1;
      for (const auto& item : expr.items) {
        if (item.name_key.has_value()) {
          table->set(Table::Key{*item.name_key}, evaluate(*item.value, env));
        } else if (item.expr_key) {
          const Value key = evaluate(*item.expr_key, env);
          if (key.is_number()) {
            table->set(Table::Key{key.as_number()}, evaluate(*item.value, env));
          } else if (key.is_string()) {
            table->set(Table::Key{key.as_string()}, evaluate(*item.value, env));
          } else {
            throw ScriptError("table key must be a number or string", expr.line);
          }
        } else {
          table->set(Table::Key{next_index}, evaluate(*item.value, env));
          next_index += 1;
        }
      }
      return Value(std::move(table));
    }
  }
  return Value();
}

Value Interpreter::binary_op(int op, const Expr& lhs_expr, const Expr& rhs_expr,
                             const std::shared_ptr<Environment>& env, int line) {
  const auto type = static_cast<TokenType>(op);
  // Short-circuit logic returns the operand value (Lua semantics).
  if (type == TokenType::kAnd) {
    Value lhs = evaluate(lhs_expr, env);
    return lhs.truthy() ? evaluate(rhs_expr, env) : lhs;
  }
  if (type == TokenType::kOr) {
    Value lhs = evaluate(lhs_expr, env);
    return lhs.truthy() ? lhs : evaluate(rhs_expr, env);
  }

  const Value lhs = evaluate(lhs_expr, env);
  const Value rhs = evaluate(rhs_expr, env);
  return apply_binary_op(op, lhs, rhs, line);
}

Value apply_binary_op(int op, const Value& lhs, const Value& rhs, int line) {
  const auto type = static_cast<TokenType>(op);
  if (type == TokenType::kEq) return Value(lhs.equals(rhs));
  if (type == TokenType::kNe) return Value(!lhs.equals(rhs));
  if (type == TokenType::kConcat) {
    if ((lhs.is_string() || lhs.is_number()) && (rhs.is_string() || rhs.is_number()))
      return Value(lhs.to_display_string() + rhs.to_display_string());
    throw ScriptError("attempt to concatenate a " +
                          (lhs.is_string() || lhs.is_number() ? rhs : lhs).type_name(),
                      line);
  }

  if (lhs.is_string() && rhs.is_string()) {
    switch (type) {
      case TokenType::kLt: return Value(lhs.as_string() < rhs.as_string());
      case TokenType::kLe: return Value(lhs.as_string() <= rhs.as_string());
      case TokenType::kGt: return Value(lhs.as_string() > rhs.as_string());
      case TokenType::kGe: return Value(lhs.as_string() >= rhs.as_string());
      default: break;
    }
  }

  if (!lhs.is_number() || !rhs.is_number()) {
    throw ScriptError("attempt to perform arithmetic/comparison on a " +
                          (lhs.is_number() ? rhs : lhs).type_name() + " value",
                      line);
  }
  const double a = lhs.as_number();
  const double b = rhs.as_number();
  switch (type) {
    case TokenType::kPlus: return Value(a + b);
    case TokenType::kMinus: return Value(a - b);
    case TokenType::kStar: return Value(a * b);
    case TokenType::kSlash: return Value(a / b);
    case TokenType::kPercent: return Value(a - std::floor(a / b) * b);  // Lua modulo
    case TokenType::kCaret: return Value(std::pow(a, b));
    case TokenType::kLt: return Value(a < b);
    case TokenType::kLe: return Value(a <= b);
    case TokenType::kGt: return Value(a > b);
    case TokenType::kGe: return Value(a >= b);
    default: throw ScriptError("bad binary operator", line);
  }
}

Value Interpreter::index_value(const Value& object, const Value& key, int line) {
  if (object.is_table()) {
    if (key.is_number()) return object.as_table()->get(Table::Key{key.as_number()});
    if (key.is_string()) return object.as_table()->get(Table::Key{key.as_string()});
    return Value();
  }
  if (object.is_userdata()) {
    auto& ud = *object.as_userdata();
    if (key.is_number() && ud.methods()->index_number) {
      return ud.methods()->index_number(*this, ud, key.as_number());
    }
    if (key.is_string()) {
      // Methods are visible as fields too (f = obj.method).
      const auto it = ud.methods()->methods.find(key.as_string());
      if (it != ud.methods()->methods.end()) {
        const Method method = it->second;
        auto self = object.as_userdata();
        return make_native(key.as_string(),
                           [method, self](Interpreter& interp, std::vector<Value>& args) {
                             return method(interp, *self, args);
                           });
      }
    }
    if (ud.methods()->index) {
      const std::string field = key.is_string() ? key.as_string() : key.to_display_string();
      return ud.methods()->index(*this, ud, field);
    }
    throw ScriptError("cannot index " + ud.type_name() + " with '" + key.to_display_string() +
                          "'",
                      line);
  }
  throw ScriptError("attempt to index a " + object.type_name() + " value", line);
}

void Interpreter::assign_target(const Expr& target, const Value& value,
                                const std::shared_ptr<Environment>& env) {
  if (target.kind == ExprKind::kName) {
    if (!env->assign(target.name, value)) globals_->declare(target.name, value);
    return;
  }
  // Index assignment: obj.key = v / obj[k] = v.
  const Value object = evaluate(*target.object, env);
  const Value key = evaluate(*target.key, env);
  if (object.is_table()) {
    if (key.is_number()) {
      object.as_table()->set(Table::Key{key.as_number()}, value);
    } else if (key.is_string()) {
      object.as_table()->set(Table::Key{key.as_string()}, value);
    } else {
      throw ScriptError("invalid table key", target.line);
    }
    return;
  }
  throw ScriptError("attempt to index a " + object.type_name() + " value", target.line);
}

// ---------------------------------------------------------------------------
// Base library
// ---------------------------------------------------------------------------

void Interpreter::install_base_library() {
  set_global("print", make_native("print", [](Interpreter&, std::vector<Value>& args) {
               std::string line;
               for (std::size_t i = 0; i < args.size(); ++i) {
                 if (i > 0) line += "\t";
                 line += args[i].to_display_string();
               }
               std::cout << line << "\n";
               return std::vector<Value>{};
             }));

  set_global("tostring", make_native("tostring", [](Interpreter&, std::vector<Value>& args) {
               return std::vector<Value>{
                   Value(args.empty() ? "nil" : args[0].to_display_string())};
             }));

  set_global("tonumber", make_native("tonumber", [](Interpreter&, std::vector<Value>& args) {
               if (!args.empty() && args[0].is_number()) return std::vector<Value>{args[0]};
               if (!args.empty() && args[0].is_string()) {
                 char* end = nullptr;
                 const double v = std::strtod(args[0].as_string().c_str(), &end);
                 if (end != args[0].as_string().c_str() && *end == '\0')
                   return std::vector<Value>{Value(v)};
               }
               return std::vector<Value>{Value()};
             }));

  set_global("type", make_native("type", [](Interpreter&, std::vector<Value>& args) {
               return std::vector<Value>{
                   Value(args.empty() ? "nil" : args[0].type_name())};
             }));

  set_global("error", make_native("error", [](Interpreter&, std::vector<Value>& args) {
               throw ScriptError(args.empty() ? "error" : args[0].to_display_string());
               return std::vector<Value>{};  // unreachable
             }));

  set_global("assert", make_native("assert", [](Interpreter&, std::vector<Value>& args) {
               if (args.empty() || !args[0].truthy()) {
                 throw ScriptError(args.size() > 1 ? args[1].to_display_string()
                                                   : "assertion failed!");
               }
               return args;
             }));

  // ipairs: stateless array iterator. Works on tables and on userdata
  // exposing __len / __index_number (bufArray).
  set_global("ipairs", make_native("ipairs", [](Interpreter& interp, std::vector<Value>& args) {
               if (args.empty()) throw ScriptError("ipairs: missing argument");
               Value target = args[0];
               auto iter = make_native(
                   "ipairs_iter", [](Interpreter& in, std::vector<Value>& iter_args) {
                     const Value& container = iter_args[0];
                     const double next = iter_args[1].is_number()
                                             ? iter_args[1].as_number() + 1
                                             : 1;
                     const Value element =
                         in.index_for_iteration(container, next);
                     if (element.is_nil()) return std::vector<Value>{Value()};
                     return std::vector<Value>{Value(next), element};
                   });
               // Let the VM open-code calls to this iterator (same
               // semantics, no argument/result vectors per element).
               (*iter.native())->builtin = NativeFunction::Builtin::kIpairsIter;
               (void)interp;
               return std::vector<Value>{iter, target, Value(0.0)};
             }));

  // pairs over tables: snapshot iteration (sufficient for scripts that
  // accumulate results; mirrors typical usage in the paper's listings).
  set_global("pairs", make_native("pairs", [](Interpreter&, std::vector<Value>& args) {
               auto table = arg_table(args, 0, "pairs");
               auto keys = std::make_shared<std::vector<Table::Key>>();
               for (const auto& [key, value] : table->entries()) keys->push_back(key);
               auto index = std::make_shared<std::size_t>(0);
               auto iter = make_native(
                   "pairs_iter", [table, keys, index](Interpreter&, std::vector<Value>&) {
                     while (*index < keys->size()) {
                       const auto key = (*keys)[(*index)++];
                       const Value value = table->get(key);
                       if (value.is_nil()) continue;  // removed meanwhile
                       const Value key_value = std::holds_alternative<double>(key)
                                                   ? Value(std::get<double>(key))
                                                   : Value(std::get<std::string>(key));
                       return std::vector<Value>{key_value, value};
                     }
                     return std::vector<Value>{Value()};
                   });
               return std::vector<Value>{iter, Value(table), Value()};
             }));

  // math.*
  auto math = std::make_shared<Table>();
  auto rng = std::make_shared<std::mt19937_64>(0x5eed);
  // math.random always yields exactly one number, so the single-result
  // protocol is registered alongside the vector one (same core lambda —
  // identical behaviour by construction; the VM uses fn1 on the hot path).
  const NativeFn1 random1 = [rng](Interpreter&, std::vector<Value>& args) -> Value {
    if (args.empty()) {
      return Value(static_cast<double>((*rng)() >> 11) / 9007199254740992.0);
    }
    const auto m = static_cast<std::uint64_t>(arg_number(args, 0, "math.random"));
    if (args.size() >= 2) {
      const auto lo = static_cast<std::int64_t>(m);
      const auto hi = static_cast<std::int64_t>(arg_number(args, 1, "math.random"));
      return Value(static_cast<double>(
          lo + static_cast<std::int64_t>((*rng)() %
                                         static_cast<std::uint64_t>(hi - lo + 1))));
    }
    return Value(static_cast<double>(1 + (*rng)() % m));
  };
  Value random_fn =
      make_native("math.random", [random1](Interpreter& interp, std::vector<Value>& args) {
        return std::vector<Value>{random1(interp, args)};
      });
  (*random_fn.native())->fn1 = random1;
  // Identity + engine exposed for the trace specializer: kernels that fold
  // math.random(m) draws must pull from this exact engine and verify the
  // call site still resolves to this exact native.
  (*random_fn.native())->builtin = NativeFunction::Builtin::kMathRandom;
  math_rng_ = rng;
  math_random_ = *random_fn.native();
  math->set(Table::Key{"random"}, std::move(random_fn));
  math->set(Table::Key{"randomseed"},
            make_native("math.randomseed", [rng](Interpreter&, std::vector<Value>& args) {
              rng->seed(static_cast<std::uint64_t>(arg_number(args, 0, "math.randomseed")));
              return std::vector<Value>{};
            }));
  math->set(Table::Key{"floor"}, make_native("math.floor", [](Interpreter&, std::vector<Value>& a) {
              return std::vector<Value>{Value(std::floor(arg_number(a, 0, "math.floor")))};
            }));
  math->set(Table::Key{"ceil"}, make_native("math.ceil", [](Interpreter&, std::vector<Value>& a) {
              return std::vector<Value>{Value(std::ceil(arg_number(a, 0, "math.ceil")))};
            }));
  math->set(Table::Key{"abs"}, make_native("math.abs", [](Interpreter&, std::vector<Value>& a) {
              return std::vector<Value>{Value(std::abs(arg_number(a, 0, "math.abs")))};
            }));
  math->set(Table::Key{"min"}, make_native("math.min", [](Interpreter&, std::vector<Value>& a) {
              double best = arg_number(a, 0, "math.min");
              for (std::size_t i = 1; i < a.size(); ++i)
                best = std::min(best, arg_number(a, i, "math.min"));
              return std::vector<Value>{Value(best)};
            }));
  math->set(Table::Key{"max"}, make_native("math.max", [](Interpreter&, std::vector<Value>& a) {
              double best = arg_number(a, 0, "math.max");
              for (std::size_t i = 1; i < a.size(); ++i)
                best = std::max(best, arg_number(a, i, "math.max"));
              return std::vector<Value>{Value(best)};
            }));
  math->set(Table::Key{"huge"}, Value(std::numeric_limits<double>::infinity()));
  set_global("math", Value(math));

  // string.format (the subset scripts use for reporting).
  auto string_lib = std::make_shared<Table>();
  string_lib->set(
      Table::Key{"format"},
      make_native("string.format", [](Interpreter&, std::vector<Value>& args) {
        const std::string fmt = arg_string(args, 0, "string.format");
        std::string out;
        std::size_t arg_index = 1;
        for (std::size_t i = 0; i < fmt.size(); ++i) {
          if (fmt[i] != '%') {
            out.push_back(fmt[i]);
            continue;
          }
          // Collect the specifier.
          std::string spec = "%";
          ++i;
          while (i < fmt.size() && std::string("-+ #0123456789.").find(fmt[i]) != std::string::npos)
            spec.push_back(fmt[i++]);
          if (i >= fmt.size()) throw ScriptError("string.format: bad format");
          const char conv = fmt[i];
          spec.push_back(conv);
          char buf[128];
          switch (conv) {
            case '%': out.push_back('%'); break;
            case 'd': case 'i': {
              std::string s2 = spec.substr(0, spec.size() - 1) + "lld";
              std::snprintf(buf, sizeof(buf), s2.c_str(),
                            static_cast<long long>(arg_number(args, arg_index++, "format")));
              out += buf;
              break;
            }
            case 'f': case 'g': case 'e': {
              std::snprintf(buf, sizeof(buf), spec.c_str(),
                            arg_number(args, arg_index++, "format"));
              out += buf;
              break;
            }
            case 'x': case 'X': {
              const std::string s2 =
                  spec.substr(0, spec.size() - 1) + (conv == 'x' ? "llx" : "llX");
              std::snprintf(buf, sizeof(buf), s2.c_str(),
                            static_cast<unsigned long long>(arg_number(args, arg_index++, "format")));
              out += buf;
              break;
            }
            case 's': {
              if (arg_index >= args.size()) throw ScriptError("string.format: missing argument");
              out += args[arg_index++].to_display_string();
              break;
            }
            default: throw ScriptError(std::string("string.format: unsupported %") + conv);
          }
        }
        return std::vector<Value>{Value(out)};
      }));
  set_global("string", Value(string_lib));

  // string.sub / rep / upper / lower / len / byte.
  string_lib->set(Table::Key{"sub"},
                  make_native("string.sub", [](Interpreter&, std::vector<Value>& args) {
                    const std::string s = arg_string(args, 0, "string.sub");
                    auto norm = [&](double idx) -> std::ptrdiff_t {
                      auto i = static_cast<std::ptrdiff_t>(idx);
                      if (i < 0) i = static_cast<std::ptrdiff_t>(s.size()) + i + 1;
                      return i;
                    };
                    std::ptrdiff_t from = args.size() > 1 ? norm(arg_number(args, 1, "sub")) : 1;
                    std::ptrdiff_t to = args.size() > 2
                                            ? norm(arg_number(args, 2, "sub"))
                                            : static_cast<std::ptrdiff_t>(s.size());
                    from = std::max<std::ptrdiff_t>(from, 1);
                    to = std::min<std::ptrdiff_t>(to, static_cast<std::ptrdiff_t>(s.size()));
                    if (from > to) return std::vector<Value>{Value(std::string())};
                    return std::vector<Value>{Value(s.substr(
                        static_cast<std::size_t>(from - 1), static_cast<std::size_t>(to - from + 1)))};
                  }));
  string_lib->set(Table::Key{"rep"},
                  make_native("string.rep", [](Interpreter&, std::vector<Value>& args) {
                    const std::string s = arg_string(args, 0, "string.rep");
                    const auto n = static_cast<long>(arg_number(args, 1, "string.rep"));
                    std::string out;
                    for (long i = 0; i < n; ++i) out += s;
                    return std::vector<Value>{Value(out)};
                  }));
  string_lib->set(Table::Key{"len"},
                  make_native("string.len", [](Interpreter&, std::vector<Value>& args) {
                    return std::vector<Value>{Value(
                        static_cast<double>(arg_string(args, 0, "string.len").size()))};
                  }));
  string_lib->set(Table::Key{"byte"},
                  make_native("string.byte", [](Interpreter&, std::vector<Value>& args) {
                    const std::string s = arg_string(args, 0, "string.byte");
                    const auto i = args.size() > 1
                                       ? static_cast<std::size_t>(arg_number(args, 1, "byte"))
                                       : 1;
                    if (i < 1 || i > s.size()) return std::vector<Value>{Value()};
                    return std::vector<Value>{
                        Value(static_cast<double>(static_cast<unsigned char>(s[i - 1])))};
                  }));

  // table.insert / remove / concat — the trio the example scripts use.
  auto table_lib = std::make_shared<Table>();
  table_lib->set(Table::Key{"insert"},
                 make_native("table.insert", [](Interpreter&, std::vector<Value>& args) {
                   auto t = arg_table(args, 0, "table.insert");
                   if (args.size() >= 3) {
                     // insert at position: shift the dense suffix up.
                     const auto pos = static_cast<std::size_t>(arg_number(args, 1, "insert"));
                     const std::size_t n = t->array_size();
                     for (std::size_t i = n; i >= pos && i >= 1; --i) {
                       t->set(Table::Key{static_cast<double>(i + 1)},
                              t->get(Table::Key{static_cast<double>(i)}));
                       if (i == pos) break;
                     }
                     t->set(Table::Key{static_cast<double>(pos)}, args[2]);
                   } else if (args.size() == 2) {
                     t->set(Table::Key{static_cast<double>(t->array_size() + 1)}, args[1]);
                   } else {
                     throw ScriptError("table.insert: wrong number of arguments");
                   }
                   return std::vector<Value>{};
                 }));
  table_lib->set(Table::Key{"remove"},
                 make_native("table.remove", [](Interpreter&, std::vector<Value>& args) {
                   auto t = arg_table(args, 0, "table.remove");
                   const std::size_t n = t->array_size();
                   if (n == 0) return std::vector<Value>{Value()};
                   const auto pos = args.size() > 1
                                        ? static_cast<std::size_t>(arg_number(args, 1, "remove"))
                                        : n;
                   const Value removed = t->get(Table::Key{static_cast<double>(pos)});
                   for (std::size_t i = pos; i < n; ++i) {
                     t->set(Table::Key{static_cast<double>(i)},
                            t->get(Table::Key{static_cast<double>(i + 1)}));
                   }
                   t->set(Table::Key{static_cast<double>(n)}, Value());
                   return std::vector<Value>{removed};
                 }));
  table_lib->set(Table::Key{"concat"},
                 make_native("table.concat", [](Interpreter&, std::vector<Value>& args) {
                   auto t = arg_table(args, 0, "table.concat");
                   const std::string sep =
                       args.size() > 1 && args[1].is_string() ? args[1].as_string() : "";
                   std::string out;
                   const std::size_t n = t->array_size();
                   for (std::size_t i = 1; i <= n; ++i) {
                     if (i > 1) out += sep;
                     out += t->get(Table::Key{static_cast<double>(i)}).to_display_string();
                   }
                   return std::vector<Value>{Value(out)};
                 }));
  set_global("table", Value(table_lib));

  // os.clock / sleep helpers used by scripts.
  auto os_lib = std::make_shared<Table>();
  os_lib->set(Table::Key{"clock"}, make_native("os.clock", [](Interpreter&, std::vector<Value>&) {
                const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                    std::chrono::steady_clock::now().time_since_epoch())
                                    .count();
                return std::vector<Value>{Value(static_cast<double>(ns) / 1e9)};
              }));
  set_global("os", Value(os_lib));
}

}  // namespace moongen::script
