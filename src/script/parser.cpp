#include "script/parser.hpp"

#include "script/lexer.hpp"
#include "script/value.hpp"

namespace moongen::script {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  std::shared_ptr<Program> run() {
    auto program = std::make_shared<Program>();
    program->block = block({TokenType::kEof});
    expect(TokenType::kEof);
    return program;
  }

 private:
  // --- token helpers -------------------------------------------------------

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  [[nodiscard]] bool check(TokenType t) const { return peek().type == t; }
  const Token& advance() { return tokens_[pos_++]; }
  bool match(TokenType t) {
    if (check(t)) {
      ++pos_;
      return true;
    }
    return false;
  }
  const Token& expect(TokenType t) {
    if (!check(t)) {
      throw ScriptError("expected " + token_type_name(t) + " near '" + peek().text + "' (" +
                            token_type_name(peek().type) + ")",
                        peek().line);
    }
    return advance();
  }

  [[nodiscard]] static bool block_end(TokenType t) {
    return t == TokenType::kEnd || t == TokenType::kEof || t == TokenType::kElse ||
           t == TokenType::kElseif || t == TokenType::kUntil;
  }

  // --- statements -----------------------------------------------------------

  Block block(std::initializer_list<TokenType> /*until*/ = {}) {
    Block stmts;
    while (!block_end(peek().type)) {
      if (match(TokenType::kSemicolon)) continue;
      stmts.push_back(statement());
      // `return` must be the last statement of a block.
      if (stmts.back()->kind == StmtKind::kReturn) break;
    }
    return stmts;
  }

  StmtPtr statement() {
    const int line = peek().line;
    switch (peek().type) {
      case TokenType::kLocal: return local_statement();
      case TokenType::kIf: return if_statement();
      case TokenType::kWhile: return while_statement();
      case TokenType::kRepeat: return repeat_statement();
      case TokenType::kFor: return for_statement();
      case TokenType::kFunction: return function_statement();
      case TokenType::kReturn: return return_statement();
      case TokenType::kDo: {
        advance();
        auto stmt = make_stmt(StmtKind::kDo, line);
        stmt->body = block();
        expect(TokenType::kEnd);
        return stmt;
      }
      case TokenType::kBreak: {
        advance();
        return make_stmt(StmtKind::kBreak, line);
      }
      default: return expr_or_assign_statement();
    }
  }

  static StmtPtr make_stmt(StmtKind kind, int line) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = kind;
    stmt->line = line;
    return stmt;
  }

  StmtPtr local_statement() {
    const int line = advance().line;  // 'local'
    if (check(TokenType::kFunction)) {
      advance();
      auto stmt = make_stmt(StmtKind::kFunctionDecl, line);
      stmt->is_local_function = true;
      const std::string name = expect(TokenType::kName).text;
      stmt->func_path = {name};
      stmt->function = function_body(name);
      return stmt;
    }
    auto stmt = make_stmt(StmtKind::kLocal, line);
    stmt->names.push_back(expect(TokenType::kName).text);
    while (match(TokenType::kComma)) stmt->names.push_back(expect(TokenType::kName).text);
    if (match(TokenType::kAssign)) {
      stmt->exprs.push_back(expression());
      while (match(TokenType::kComma)) stmt->exprs.push_back(expression());
    }
    return stmt;
  }

  StmtPtr if_statement() {
    const int line = advance().line;  // 'if'
    auto stmt = make_stmt(StmtKind::kIf, line);
    IfBranch first;
    first.condition = expression();
    expect(TokenType::kThen);
    first.body = block();
    stmt->branches.push_back(std::move(first));
    while (check(TokenType::kElseif)) {
      advance();
      IfBranch branch;
      branch.condition = expression();
      expect(TokenType::kThen);
      branch.body = block();
      stmt->branches.push_back(std::move(branch));
    }
    if (match(TokenType::kElse)) {
      stmt->has_else = true;
      stmt->else_body = block();
    }
    expect(TokenType::kEnd);
    return stmt;
  }

  StmtPtr while_statement() {
    const int line = advance().line;
    auto stmt = make_stmt(StmtKind::kWhile, line);
    stmt->condition = expression();
    expect(TokenType::kDo);
    stmt->body = block();
    expect(TokenType::kEnd);
    return stmt;
  }

  StmtPtr repeat_statement() {
    const int line = advance().line;
    auto stmt = make_stmt(StmtKind::kRepeat, line);
    stmt->body = block();
    expect(TokenType::kUntil);
    stmt->condition = expression();
    return stmt;
  }

  StmtPtr for_statement() {
    const int line = advance().line;  // 'for'
    const std::string first = expect(TokenType::kName).text;
    if (match(TokenType::kAssign)) {
      auto stmt = make_stmt(StmtKind::kNumericFor, line);
      stmt->loop_var = first;
      stmt->for_start = expression();
      expect(TokenType::kComma);
      stmt->for_stop = expression();
      if (match(TokenType::kComma)) stmt->for_step = expression();
      expect(TokenType::kDo);
      stmt->body = block();
      expect(TokenType::kEnd);
      return stmt;
    }
    auto stmt = make_stmt(StmtKind::kGenericFor, line);
    stmt->names.push_back(first);
    while (match(TokenType::kComma)) stmt->names.push_back(expect(TokenType::kName).text);
    expect(TokenType::kIn);
    stmt->exprs.push_back(expression());
    while (match(TokenType::kComma)) stmt->exprs.push_back(expression());
    expect(TokenType::kDo);
    stmt->body = block();
    expect(TokenType::kEnd);
    return stmt;
  }

  StmtPtr function_statement() {
    const int line = advance().line;  // 'function'
    auto stmt = make_stmt(StmtKind::kFunctionDecl, line);
    stmt->func_path.push_back(expect(TokenType::kName).text);
    while (match(TokenType::kDot)) stmt->func_path.push_back(expect(TokenType::kName).text);
    std::string name = stmt->func_path.front();
    for (std::size_t i = 1; i < stmt->func_path.size(); ++i) name += "." + stmt->func_path[i];
    stmt->function = function_body(name);
    return stmt;
  }

  StmtPtr return_statement() {
    const int line = advance().line;
    auto stmt = make_stmt(StmtKind::kReturn, line);
    if (!block_end(peek().type) && !check(TokenType::kSemicolon)) {
      stmt->exprs.push_back(expression());
      while (match(TokenType::kComma)) stmt->exprs.push_back(expression());
    }
    return stmt;
  }

  StmtPtr expr_or_assign_statement() {
    const int line = peek().line;
    ExprPtr first = suffixed_expression();
    if (check(TokenType::kAssign) || check(TokenType::kComma)) {
      auto stmt = make_stmt(StmtKind::kAssign, line);
      stmt->targets.push_back(std::move(first));
      while (match(TokenType::kComma)) stmt->targets.push_back(suffixed_expression());
      expect(TokenType::kAssign);
      stmt->exprs.push_back(expression());
      while (match(TokenType::kComma)) stmt->exprs.push_back(expression());
      for (const auto& target : stmt->targets) {
        if (target->kind != ExprKind::kName && target->kind != ExprKind::kIndex)
          throw ScriptError("cannot assign to this expression", line);
      }
      return stmt;
    }
    if (first->kind != ExprKind::kCall && first->kind != ExprKind::kMethodCall)
      throw ScriptError("unexpected expression statement (only calls allowed)", line);
    auto stmt = make_stmt(StmtKind::kExpr, line);
    stmt->expr = std::move(first);
    return stmt;
  }

  std::shared_ptr<FunctionDecl> function_body(std::string name) {
    auto decl = std::make_shared<FunctionDecl>();
    decl->name = std::move(name);
    expect(TokenType::kLParen);
    if (!check(TokenType::kRParen)) {
      decl->params.push_back(expect(TokenType::kName).text);
      while (match(TokenType::kComma)) decl->params.push_back(expect(TokenType::kName).text);
    }
    expect(TokenType::kRParen);
    decl->body = block();
    expect(TokenType::kEnd);
    return decl;
  }

  // --- expressions ----------------------------------------------------------

  static ExprPtr make_expr(ExprKind kind, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->line = line;
    return e;
  }

  [[nodiscard]] static int binary_precedence(TokenType t) {
    switch (t) {
      case TokenType::kOr: return 1;
      case TokenType::kAnd: return 2;
      case TokenType::kLt:
      case TokenType::kGt:
      case TokenType::kLe:
      case TokenType::kGe:
      case TokenType::kEq:
      case TokenType::kNe: return 3;
      case TokenType::kConcat: return 4;  // right associative
      case TokenType::kPlus:
      case TokenType::kMinus: return 5;
      case TokenType::kStar:
      case TokenType::kSlash:
      case TokenType::kPercent: return 6;
      case TokenType::kCaret: return 8;  // right associative, above unary
      default: return 0;
    }
  }

  ExprPtr expression(int min_prec = 1) {
    ExprPtr left = unary_expression();
    while (true) {
      const TokenType op = peek().type;
      const int prec = binary_precedence(op);
      if (prec < min_prec) break;
      const int line = advance().line;
      const bool right_assoc = op == TokenType::kConcat || op == TokenType::kCaret;
      ExprPtr right = expression(right_assoc ? prec : prec + 1);
      auto node = make_expr(ExprKind::kBinary, line);
      node->op = static_cast<int>(op);
      node->lhs = std::move(left);
      node->rhs = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  ExprPtr unary_expression() {
    const TokenType t = peek().type;
    if (t == TokenType::kNot || t == TokenType::kMinus || t == TokenType::kHash) {
      const int line = advance().line;
      auto node = make_expr(ExprKind::kUnary, line);
      node->op = static_cast<int>(t);
      node->rhs = expression(7);  // unary binds tighter than * but looser than ^
      return node;
    }
    return suffixed_expression();
  }

  ExprPtr suffixed_expression() {
    ExprPtr expr = primary_expression();
    while (true) {
      const int line = peek().line;
      if (match(TokenType::kDot)) {
        auto node = make_expr(ExprKind::kIndex, line);
        auto key = make_expr(ExprKind::kString, line);
        key->string = expect(TokenType::kName).text;
        node->object = std::move(expr);
        node->key = std::move(key);
        expr = std::move(node);
      } else if (match(TokenType::kLBracket)) {
        auto node = make_expr(ExprKind::kIndex, line);
        node->object = std::move(expr);
        node->key = expression();
        expect(TokenType::kRBracket);
        expr = std::move(node);
      } else if (check(TokenType::kLParen) || check(TokenType::kLBrace) ||
                 check(TokenType::kString)) {
        auto node = make_expr(ExprKind::kCall, line);
        node->callee = std::move(expr);
        node->args = call_arguments();
        expr = std::move(node);
      } else if (match(TokenType::kColon)) {
        auto node = make_expr(ExprKind::kMethodCall, line);
        node->method = expect(TokenType::kName).text;
        node->object = std::move(expr);
        node->args = call_arguments();
        expr = std::move(node);
      } else {
        return expr;
      }
    }
  }

  std::vector<ExprPtr> call_arguments() {
    std::vector<ExprPtr> args;
    if (check(TokenType::kLBrace)) {  // f{...} sugar
      args.push_back(table_constructor());
      return args;
    }
    if (check(TokenType::kString)) {  // f"str" sugar
      auto node = make_expr(ExprKind::kString, peek().line);
      node->string = advance().text;
      args.push_back(std::move(node));
      return args;
    }
    expect(TokenType::kLParen);
    if (!check(TokenType::kRParen)) {
      args.push_back(expression());
      while (match(TokenType::kComma)) args.push_back(expression());
    }
    expect(TokenType::kRParen);
    return args;
  }

  ExprPtr primary_expression() {
    const Token& tok = peek();
    switch (tok.type) {
      case TokenType::kNil: advance(); return make_expr(ExprKind::kNil, tok.line);
      case TokenType::kTrue: advance(); return make_expr(ExprKind::kTrue, tok.line);
      case TokenType::kFalse: advance(); return make_expr(ExprKind::kFalse, tok.line);
      case TokenType::kNumber: {
        advance();
        auto node = make_expr(ExprKind::kNumber, tok.line);
        node->number = tok.number;
        return node;
      }
      case TokenType::kString: {
        advance();
        auto node = make_expr(ExprKind::kString, tok.line);
        node->string = tok.text;
        return node;
      }
      case TokenType::kName: {
        advance();
        auto node = make_expr(ExprKind::kName, tok.line);
        node->name = tok.text;
        return node;
      }
      case TokenType::kLParen: {
        advance();
        ExprPtr inner = expression();
        expect(TokenType::kRParen);
        return inner;
      }
      case TokenType::kLBrace: return table_constructor();
      case TokenType::kFunction: {
        advance();
        auto node = make_expr(ExprKind::kFunction, tok.line);
        node->function = function_body("<anonymous>");
        return node;
      }
      default:
        throw ScriptError("unexpected token '" + tok.text + "' (" +
                              token_type_name(tok.type) + ")",
                          tok.line);
    }
  }

  ExprPtr table_constructor() {
    const int line = expect(TokenType::kLBrace).line;
    auto node = make_expr(ExprKind::kTable, line);
    while (!check(TokenType::kRBrace)) {
      TableItem item;
      if (check(TokenType::kName) && peek(1).type == TokenType::kAssign) {
        item.name_key = advance().text;
        advance();  // '='
        item.value = expression();
      } else if (match(TokenType::kLBracket)) {
        item.expr_key = expression();
        expect(TokenType::kRBracket);
        expect(TokenType::kAssign);
        item.value = expression();
      } else {
        item.value = expression();
      }
      node->items.push_back(std::move(item));
      if (!match(TokenType::kComma) && !match(TokenType::kSemicolon)) break;
    }
    expect(TokenType::kRBrace);
    return node;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

std::shared_ptr<Program> parse(std::string_view source) {
  return Parser(tokenize(source)).run();
}

}  // namespace moongen::script
