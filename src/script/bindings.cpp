#include "script/bindings.hpp"

#include <atomic>
#include <chrono>
#include <iostream>
#include <mutex>
#include <thread>
#include <unordered_map>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "core/device.hpp"
#include "core/task.hpp"
#include "membuf/buf_array.hpp"
#include "membuf/mempool.hpp"
#include "proto/packet_view.hpp"
#include "script/parser.hpp"
#include "stats/counters.hpp"

namespace moongen::script {

namespace {

// ---------------------------------------------------------------------------
// Bound object wrappers
// ---------------------------------------------------------------------------

struct QueueRef {
  core::Device* dev = nullptr;
  core::TxQueue* tx = nullptr;
  core::RxQueue* rx = nullptr;
};

struct PacketRef {
  membuf::PktBuf* buf = nullptr;
  // Identity-stable child accessors. `buf` is fixed for the lifetime of a
  // PacketRef, so `buf:getUdpPacket()`, `.ip`, `.udp`, `.src` and `.dst`
  // can hand out the same wrapper on every access (like LuaJIT cdata views
  // in the original) instead of allocating a fresh one per packet.
  Value udp_packet;
  Value ip_hdr;
  Value udp_hdr;
  Value src_addr;
  Value dst_addr;
};

struct AddrRef {
  membuf::PktBuf* buf = nullptr;
  bool dst = false;
};

/// Script-side bufArray: the array plus identity-stable `buf` wrappers
/// keyed by the underlying PktBuf*. Mempools recycle the same buffers
/// batch after batch (TX frees with a one-batch lag, so two buffer sets
/// alternate), and keying by pointer makes every recycled buffer hit its
/// existing wrapper — the steady-state allocates nothing per packet.
struct BufArrayCache {
  template <typename... Args>
  explicit BufArrayCache(Args&&... args) : array(std::forward<Args>(args)...) {}
  membuf::BufArray array;
  std::unordered_map<membuf::PktBuf*, Value> elems;
};

struct CounterRef {
  std::unique_ptr<stats::RateCounter> counter;
  bool is_rx = false;
};

// Method tables are process-lifetime singletons.
MethodTable& device_methods();
MethodTable& tx_queue_methods();
MethodTable& rx_queue_methods();
MethodTable& mempool_methods();
MethodTable& buf_array_methods();
MethodTable& buf_methods();
MethodTable& udp_packet_methods();
MethodTable& ip_header_methods();
MethodTable& udp_header_methods();
MethodTable& addr_methods();
MethodTable& counter_methods();

// ---------------------------------------------------------------------------
// Pooled allocation for per-access wrapper objects
//
// Scripts create a fresh wrapper every time they touch a packet field
// (`buf:getUdpPacket().ip.src` allocates three), so on the per-packet hot
// path the wrapper churn is pure malloc/free traffic. A per-thread freelist
// recycles the fixed-size allocate_shared nodes instead. Blocks may migrate
// between threads' freelists (allocated on one, released on another); they
// are interchangeable, and spill/refill always goes through ::operator new.
// ---------------------------------------------------------------------------

template <typename T>
struct PoolAlloc {
  using value_type = T;
  PoolAlloc() = default;
  template <typename U>
  PoolAlloc(const PoolAlloc<U>&) {}  // NOLINT(google-explicit-constructor)

  static std::vector<void*>& freelist() {
    static thread_local std::vector<void*> list;
    return list;
  }
  T* allocate(std::size_t n) {
    auto& list = freelist();
    if (n == 1 && !list.empty()) {
      void* p = list.back();
      list.pop_back();
      return static_cast<T*>(p);
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    auto& list = freelist();
    if (n == 1 && list.size() < 4096) {
      list.push_back(p);
      return;
    }
    ::operator delete(p);
  }
  template <typename U>
  bool operator==(const PoolAlloc<U>&) const {
    return true;
  }
};

template <typename T, typename... Args>
std::shared_ptr<T> pooled_shared(Args&&... args) {
  return std::allocate_shared<T>(PoolAlloc<T>{}, std::forward<Args>(args)...);
}

template <typename T>
Value wrap(const MethodTable& table, std::shared_ptr<T> handle) {
  T* ptr = handle.get();
  return Value(
      pooled_shared<UserData>(&table, std::shared_ptr<void>(std::move(handle)), ptr));
}

Value wrap_queue(core::Device* dev, core::TxQueue* tx, core::RxQueue* rx) {
  auto ref = std::make_shared<QueueRef>(QueueRef{dev, tx, rx});
  return wrap(tx != nullptr ? tx_queue_methods() : rx_queue_methods(), std::move(ref));
}

/// Wraps a packet buffer as the script-visible `buf` object.
Value wrap_packet(membuf::PktBuf* buf) {
  auto ref = pooled_shared<PacketRef>(PacketRef{buf});
  return wrap(buf_methods(), std::move(ref));
}

/// Wraps a BufArrayCache so that `as<membuf::BufArray>()` keeps working:
/// the userdata pointer targets the inner array, the handle owns the cache.
Value wrap_buf_array(std::shared_ptr<BufArrayCache> cache) {
  membuf::BufArray* ptr = &cache->array;
  return Value(pooled_shared<UserData>(&buf_array_methods(),
                                       std::shared_ptr<void>(std::move(cache)), ptr));
}

std::vector<Value> no_values() { return {}; }

proto::MacAddress mac_from_value(const Value& v, const char* what) {
  if (v.is_string()) {
    auto mac = proto::MacAddress::parse(v.as_string());
    if (!mac) throw ScriptError(std::string(what) + ": bad MAC '" + v.as_string() + "'");
    return *mac;
  }
  if (v.is_userdata() && v.as_userdata()->methods() == &tx_queue_methods()) {
    // `ethSrc = queue`: take the MAC from the queue's device (Listing 2).
    return v.as_userdata()->as<QueueRef>()->dev->mac();
  }
  if (v.is_number()) return proto::MacAddress::from_uint64(static_cast<std::uint64_t>(v.as_number()));
  throw ScriptError(std::string(what) + ": expected MAC string, number or queue");
}

proto::IPv4Address ip_from_value(const Value& v, const char* what) {
  if (v.is_string()) {
    auto ip = proto::IPv4Address::parse(v.as_string());
    if (!ip) throw ScriptError(std::string(what) + ": bad IP '" + v.as_string() + "'");
    return *ip;
  }
  if (v.is_number()) return proto::IPv4Address{static_cast<std::uint32_t>(v.as_number())};
  throw ScriptError(std::string(what) + ": expected IP string or number");
}

// ---------------------------------------------------------------------------
// Method tables
// ---------------------------------------------------------------------------

MethodTable& device_methods() {
  static MethodTable table = [] {
    MethodTable t;
    t.type_name = "device";
    t.methods["getTxQueue"] = [](Interpreter&, UserData& self, std::vector<Value>& args) {
      auto* dev = self.as<core::Device>();
      const int i = static_cast<int>(arg_number(args, 0, "getTxQueue"));
      return std::vector<Value>{wrap_queue(dev, &dev->get_tx_queue(i), nullptr)};
    };
    t.methods["getRxQueue"] = [](Interpreter&, UserData& self, std::vector<Value>& args) {
      auto* dev = self.as<core::Device>();
      const int i = static_cast<int>(arg_number(args, 0, "getRxQueue"));
      return std::vector<Value>{wrap_queue(dev, nullptr, &dev->get_rx_queue(i))};
    };
    t.methods["connectTo"] = [](Interpreter&, UserData& self, std::vector<Value>& args) {
      auto peer = arg_userdata(args, 0, "connectTo", &device_methods());
      self.as<core::Device>()->connect_to(*peer->as<core::Device>());
      return no_values();
    };
    t.methods["getMac"] = [](Interpreter&, UserData& self, std::vector<Value>&) {
      return std::vector<Value>{Value(self.as<core::Device>()->mac().to_string())};
    };
    return t;
  }();
  return table;
}

MethodTable& tx_queue_methods() {
  static MethodTable table = [] {
    MethodTable t;
    t.type_name = "txQueue";
    t.methods["setRate"] = [](Interpreter&, UserData& self, std::vector<Value>& args) {
      self.as<QueueRef>()->tx->set_rate_mbit(arg_number(args, 0, "setRate"));
      return no_values();
    };
    // Exactly one result: register the single-result fast path too, with
    // the vector protocol wrapping the same core (identical behaviour).
    const Method1 send1 = [](Interpreter&, UserData& self, std::vector<Value>& args) -> Value {
      auto bufs = arg_userdata(args, 0, "send", &buf_array_methods());
      const auto n = self.as<QueueRef>()->tx->send(*bufs->as<membuf::BufArray>());
      return Value(static_cast<double>(n));
    };
    t.methods1["send"] = send1;
    t.methods["send"] = [send1](Interpreter& interp, UserData& self, std::vector<Value>& args) {
      return std::vector<Value>{send1(interp, self, args)};
    };
    return t;
  }();
  return table;
}

MethodTable& rx_queue_methods() {
  static MethodTable table = [] {
    MethodTable t;
    t.type_name = "rxQueue";
    t.methods["recv"] = [](Interpreter&, UserData& self, std::vector<Value>& args) {
      auto bufs = arg_userdata(args, 0, "recv", &buf_array_methods());
      const auto n = self.as<QueueRef>()->rx->recv(*bufs->as<membuf::BufArray>());
      return std::vector<Value>{Value(static_cast<double>(n))};
    };
    return t;
  }();
  return table;
}

MethodTable& mempool_methods() {
  static MethodTable table = [] {
    MethodTable t;
    t.type_name = "mempool";
    t.methods["bufArray"] = [](Interpreter&, UserData& self, std::vector<Value>& args) {
      const std::size_t n =
          args.empty() ? membuf::BufArray::kDefaultBatch
                       : static_cast<std::size_t>(arg_number(args, 0, "bufArray"));
      auto bufs = std::make_shared<BufArrayCache>(*self.as<membuf::Mempool>(), n);
      return std::vector<Value>{wrap_buf_array(std::move(bufs))};
    };
    return t;
  }();
  return table;
}

MethodTable& buf_array_methods() {
  static MethodTable table = [] {
    MethodTable t;
    t.type_name = "bufArray";
    const Method1 alloc1 = [](Interpreter&, UserData& self, std::vector<Value>& args) -> Value {
      const auto size = static_cast<std::size_t>(arg_number(args, 0, "alloc"));
      const auto n = self.as<membuf::BufArray>()->alloc(size);
      return Value(static_cast<double>(n));
    };
    t.methods1["alloc"] = alloc1;
    t.methods["alloc"] = [alloc1](Interpreter& interp, UserData& self, std::vector<Value>& args) {
      return std::vector<Value>{alloc1(interp, self, args)};
    };
    t.methods["freeAll"] = [](Interpreter&, UserData& self, std::vector<Value>&) {
      self.as<membuf::BufArray>()->free_all();
      return no_values();
    };
    t.methods["offloadUdpChecksums"] = [](Interpreter&, UserData& self, std::vector<Value>&) {
      self.as<membuf::BufArray>()->offload_udp_checksums();
      return no_values();
    };
    t.methods["offloadIPChecksums"] = [](Interpreter&, UserData& self, std::vector<Value>&) {
      self.as<membuf::BufArray>()->offload_ip_checksums();
      return no_values();
    };
    t.methods["offloadTcpChecksums"] = [](Interpreter&, UserData& self, std::vector<Value>&) {
      self.as<membuf::BufArray>()->offload_tcp_checksums();
      return no_values();
    };
    t.methods["__len"] = [](Interpreter&, UserData& self, std::vector<Value>&) {
      return std::vector<Value>{
          Value(static_cast<double>(self.as<membuf::BufArray>()->size()))};
    };
    t.index_number = [](Interpreter&, UserData& self, double index) -> Value {
      auto* cache = static_cast<BufArrayCache*>(self.handle().get());
      auto& bufs = cache->array;
      const auto i = static_cast<std::size_t>(index);
      if (i < 1 || i > bufs.size()) return Value();  // 1-based, nil past end
      membuf::PktBuf* buf = bufs[i - 1];
      Value& slot = cache->elems[buf];
      if (slot.is_nil()) slot = wrap_packet(buf);
      return slot;
    };
    // ipairs over this type yields per-packet views: the trace specializer
    // may turn a hot loop over it into a field-modifier kernel.
    t.packet_array = true;
    return t;
  }();
  return table;
}

MethodTable& buf_methods() {
  static MethodTable table = [] {
    MethodTable t;
    t.type_name = "buf";
    const Method1 get_udp1 = [](Interpreter&, UserData& self, std::vector<Value>&) -> Value {
      auto* ref = self.as<PacketRef>();
      if (ref->udp_packet.is_nil()) {
        ref->udp_packet =
            wrap(udp_packet_methods(), pooled_shared<PacketRef>(PacketRef{ref->buf}));
      }
      return ref->udp_packet;
    };
    t.methods1["getUdpPacket"] = get_udp1;
    t.methods["getUdpPacket"] = [get_udp1](Interpreter& interp, UserData& self,
                                           std::vector<Value>& args) {
      return std::vector<Value>{get_udp1(interp, self, args)};
    };
    t.methods["getLength"] = [](Interpreter&, UserData& self, std::vector<Value>&) {
      return std::vector<Value>{
          Value(static_cast<double>(self.as<PacketRef>()->buf->length()))};
    };
    // Trace tags (specializer.hpp): getUdpPacket hands out a view over the
    // same packet bytes.
    t.trace_tags["getUdpPacket"] = TraceTag{TraceTag::Kind::kDeref, false, false, 0, 0};
    return t;
  }();
  return table;
}

MethodTable& addr_methods() {
  static MethodTable table = [] {
    MethodTable t;
    t.type_name = "ipAddr";
    // No results: the single-result variant returns nil, which is exactly
    // what fixed-result-count sites would pad with.
    const Method1 set1 = [](Interpreter&, UserData& self, std::vector<Value>& args) -> Value {
      auto* ref = self.as<AddrRef>();
      proto::UdpPacketView view{ref->buf->bytes()};
      const auto addr = proto::IPv4Address{
          static_cast<std::uint32_t>(arg_number(args, 0, "ip.src:set"))};
      if (ref->dst) {
        view.ip().set_dst(addr);
      } else {
        view.ip().set_src(addr);
      }
      return Value();
    };
    t.methods1["set"] = set1;
    t.methods["set"] = [set1](Interpreter& interp, UserData& self, std::vector<Value>& args) {
      set1(interp, self, args);
      return no_values();
    };
    t.methods["get"] = [](Interpreter&, UserData& self, std::vector<Value>&) {
      auto* ref = self.as<AddrRef>();
      proto::UdpPacketView view{ref->buf->bytes()};
      const auto addr = ref->dst ? view.ip().dst() : view.ip().src();
      return std::vector<Value>{Value(static_cast<double>(addr.value))};
    };
    t.methods["getString"] = [](Interpreter&, UserData& self, std::vector<Value>&) {
      auto* ref = self.as<AddrRef>();
      proto::UdpPacketView view{ref->buf->bytes()};
      const auto addr = ref->dst ? view.ip().dst() : view.ip().src();
      return std::vector<Value>{Value(addr.to_string())};
    };
    // set() writes the field the deref chain selected (.src or .dst).
    t.trace_tags["set"] = TraceTag{TraceTag::Kind::kWrite, false, true, 0, 0};
    return t;
  }();
  return table;
}

MethodTable& ip_header_methods() {
  static MethodTable table = [] {
    MethodTable t;
    t.type_name = "ipHeader";
    t.index = [](Interpreter&, UserData& self, const std::string& field) -> Value {
      auto* ref = self.as<PacketRef>();
      if (field == "src" || field == "dst") {
        const bool dst = field == "dst";
        Value& slot = dst ? ref->dst_addr : ref->src_addr;
        if (slot.is_nil()) {
          slot = wrap(addr_methods(), pooled_shared<AddrRef>(AddrRef{ref->buf, dst}));
        }
        return slot;
      }
      return Value();
    };
    t.methods["setTTL"] = [](Interpreter&, UserData& self, std::vector<Value>& args) {
      proto::UdpPacketView view{self.as<PacketRef>()->buf->bytes()};
      view.ip().ttl = static_cast<std::uint8_t>(arg_number(args, 0, "setTTL"));
      return no_values();
    };
    t.methods["getTTL"] = [](Interpreter&, UserData& self, std::vector<Value>&) {
      proto::UdpPacketView view{self.as<PacketRef>()->buf->bytes()};
      return std::vector<Value>{Value(static_cast<double>(view.ip().ttl))};
    };
    // Byte offsets into the full frame: Ethernet 14 + IPv4 field offsets.
    t.trace_tags["src"] = TraceTag{TraceTag::Kind::kDeref, true, false, 26, 4};
    t.trace_tags["dst"] = TraceTag{TraceTag::Kind::kDeref, true, false, 30, 4};
    t.trace_tags["setTTL"] = TraceTag{TraceTag::Kind::kWrite, false, false, 22, 1};
    return t;
  }();
  return table;
}

MethodTable& udp_header_methods() {
  static MethodTable table = [] {
    MethodTable t;
    t.type_name = "udpHeader";
    t.methods["getDstPort"] = [](Interpreter&, UserData& self, std::vector<Value>&) {
      proto::UdpPacketView view{self.as<PacketRef>()->buf->bytes()};
      return std::vector<Value>{Value(static_cast<double>(view.udp().dst_port()))};
    };
    t.methods["getSrcPort"] = [](Interpreter&, UserData& self, std::vector<Value>&) {
      proto::UdpPacketView view{self.as<PacketRef>()->buf->bytes()};
      return std::vector<Value>{Value(static_cast<double>(view.udp().src_port()))};
    };
    t.methods["setDstPort"] = [](Interpreter&, UserData& self, std::vector<Value>& args) {
      proto::UdpPacketView view{self.as<PacketRef>()->buf->bytes()};
      view.udp().set_dst_port(static_cast<std::uint16_t>(arg_number(args, 0, "setDstPort")));
      return no_values();
    };
    t.methods["setSrcPort"] = [](Interpreter&, UserData& self, std::vector<Value>& args) {
      proto::UdpPacketView view{self.as<PacketRef>()->buf->bytes()};
      view.udp().set_src_port(static_cast<std::uint16_t>(arg_number(args, 0, "setSrcPort")));
      return no_values();
    };
    // Ethernet 14 + IPv4 20 = UDP header at 34.
    t.trace_tags["setSrcPort"] = TraceTag{TraceTag::Kind::kWrite, false, false, 34, 2};
    t.trace_tags["setDstPort"] = TraceTag{TraceTag::Kind::kWrite, false, false, 36, 2};
    return t;
  }();
  return table;
}

MethodTable& udp_packet_methods() {
  static MethodTable table = [] {
    MethodTable t;
    t.type_name = "udpPacket";
    t.methods["fill"] = [](Interpreter&, UserData& self, std::vector<Value>& args) {
      auto* ref = self.as<PacketRef>();
      auto opts_table = arg_table(args, 0, "fill");
      proto::UdpFillOptions opts;
      opts.packet_length = ref->buf->length();
      const Value len = opts_table->get(Table::Key{"pktLength"});
      if (len.is_number()) {
        opts.packet_length = static_cast<std::size_t>(len.as_number());
        ref->buf->set_length(opts.packet_length);
      }
      const Value eth_src = opts_table->get(Table::Key{"ethSrc"});
      if (!eth_src.is_nil()) opts.eth_src = mac_from_value(eth_src, "fill.ethSrc");
      const Value eth_dst = opts_table->get(Table::Key{"ethDst"});
      if (!eth_dst.is_nil()) opts.eth_dst = mac_from_value(eth_dst, "fill.ethDst");
      const Value ip_src = opts_table->get(Table::Key{"ipSrc"});
      if (!ip_src.is_nil()) opts.ip_src = ip_from_value(ip_src, "fill.ipSrc");
      const Value ip_dst = opts_table->get(Table::Key{"ipDst"});
      if (!ip_dst.is_nil()) opts.ip_dst = ip_from_value(ip_dst, "fill.ipDst");
      const Value udp_src = opts_table->get(Table::Key{"udpSrc"});
      if (udp_src.is_number()) opts.udp_src = static_cast<std::uint16_t>(udp_src.as_number());
      const Value udp_dst = opts_table->get(Table::Key{"udpDst"});
      if (udp_dst.is_number()) opts.udp_dst = static_cast<std::uint16_t>(udp_dst.as_number());
      proto::UdpPacketView view{ref->buf->bytes()};
      view.fill(opts);
      return no_values();
    };
    t.index = [](Interpreter&, UserData& self, const std::string& field) -> Value {
      auto* ref = self.as<PacketRef>();
      if (field == "ip") {
        if (ref->ip_hdr.is_nil()) {
          ref->ip_hdr =
              wrap(ip_header_methods(), pooled_shared<PacketRef>(PacketRef{ref->buf}));
        }
        return ref->ip_hdr;
      }
      if (field == "udp") {
        if (ref->udp_hdr.is_nil()) {
          ref->udp_hdr =
              wrap(udp_header_methods(), pooled_shared<PacketRef>(PacketRef{ref->buf}));
        }
        return ref->udp_hdr;
      }
      return Value();
    };
    // .ip and .udp are views over the same packet bytes.
    t.trace_tags["ip"] = TraceTag{TraceTag::Kind::kDeref, false, false, 0, 0};
    t.trace_tags["udp"] = TraceTag{TraceTag::Kind::kDeref, false, false, 0, 0};
    return t;
  }();
  return table;
}

MethodTable& counter_methods() {
  static MethodTable table = [] {
    MethodTable t;
    t.type_name = "counter";
    t.methods["updateWithSize"] = [](Interpreter&, UserData& self, std::vector<Value>& args) {
      auto* ref = self.as<CounterRef>();
      auto* ctr = dynamic_cast<stats::ManualTxCounter*>(ref->counter.get());
      if (ctr == nullptr) throw ScriptError("updateWithSize: not a TX counter");
      ctr->update_with_size(static_cast<std::uint64_t>(arg_number(args, 0, "updateWithSize")),
                            static_cast<std::size_t>(arg_number(args, 1, "updateWithSize")));
      return no_values();
    };
    t.methods["countPacket"] = [](Interpreter&, UserData& self, std::vector<Value>& args) {
      auto* ref = self.as<CounterRef>();
      auto* ctr = dynamic_cast<stats::PktRxCounter*>(ref->counter.get());
      if (ctr == nullptr) throw ScriptError("countPacket: not an RX counter");
      auto buf = arg_userdata(args, 0, "countPacket", &buf_methods());
      ctr->count_packet(buf->as<PacketRef>()->buf->length());
      return no_values();
    };
    t.methods["finalize"] = [](Interpreter&, UserData& self, std::vector<Value>&) {
      self.as<CounterRef>()->counter->finalize();
      return no_values();
    };
    return t;
  }();
  return table;
}

}  // namespace

// ---------------------------------------------------------------------------
// ScriptRuntime and module installation
// ---------------------------------------------------------------------------

struct ScriptRuntime::Shared {
  std::shared_ptr<const Program> program;
  std::mutex mutex;
  std::vector<std::thread> slaves;
  std::atomic<std::size_t> launched{0};
  std::atomic<int> next_core{1};
};

namespace {

void pin_thread(int core) {
#ifdef __linux__
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(core) % hw, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)core;
#endif
}

void install_modules(Interpreter& interp, const std::shared_ptr<ScriptRuntime::Shared>& shared) {
  // device module.
  auto device_module = std::make_shared<Table>();
  device_module->set(
      Table::Key{"config"}, make_native("device.config", [](Interpreter&, std::vector<Value>& args) {
        const int id = static_cast<int>(arg_number(args, 0, "device.config"));
        const int rxq = args.size() > 1 ? static_cast<int>(arg_number(args, 1, "device.config")) : 1;
        const int txq = args.size() > 2 ? static_cast<int>(arg_number(args, 2, "device.config")) : 1;
        auto& dev = core::Device::config(id, rxq, txq);
        return std::vector<Value>{Value(std::make_shared<UserData>(
            &device_methods(), std::shared_ptr<void>(), &dev))};
      }));
  device_module->set(Table::Key{"waitForLinks"},
                     make_native("device.waitForLinks", [](Interpreter&, std::vector<Value>&) {
                       core::Device::wait_for_links();
                       return no_values();
                     }));
  interp.set_global("device", Value(device_module));

  // memory module.
  auto memory_module = std::make_shared<Table>();
  memory_module->set(
      Table::Key{"createMemPool"},
      make_native("memory.createMemPool", [](Interpreter& in, std::vector<Value>& args) {
        Value init = args.empty() ? Value() : args[0];
        auto pool = std::make_shared<membuf::Mempool>(
            2048, [&in, &init](membuf::PktBuf& buf) {
              if (!init.is_callable()) return;
              buf.set_length(60);
              std::vector<Value> cb_args{wrap_packet(&buf)};
              in.call(init, std::move(cb_args));
            });
        return std::vector<Value>{wrap(mempool_methods(), std::move(pool))};
      }));
  memory_module->set(Table::Key{"bufArray"},
                     make_native("memory.bufArray", [](Interpreter&, std::vector<Value>& args) {
                       const std::size_t n =
                           args.empty() ? membuf::BufArray::kDefaultBatch
                                        : static_cast<std::size_t>(
                                              arg_number(args, 0, "memory.bufArray"));
                       auto bufs = std::make_shared<BufArrayCache>(n);
                       return std::vector<Value>{wrap_buf_array(std::move(bufs))};
                     }));
  interp.set_global("memory", Value(memory_module));

  // stats module. The paper writes `stats:newManualTxCounter(...)` (colon),
  // so the functions must tolerate a leading self argument.
  auto stats_module = std::make_shared<Table>();
  auto new_counter = [](bool rx) {
    return [rx](Interpreter&, std::vector<Value>& args) {
      // Skip a leading table argument (module called with ':').
      std::size_t base = (!args.empty() && args[0].is_table()) ? 1 : 0;
      std::string name = args.size() > base && args[base].is_string()
                             ? args[base].as_string()
                             : (args.size() > base ? args[base].to_display_string() : "ctr");
      std::string format = args.size() > base + 1 && args[base + 1].is_string()
                               ? args[base + 1].as_string()
                               : "CSV";
      const auto fmt = format == "plain" ? stats::Format::kPlain : stats::Format::kCsv;
      auto ref = std::make_shared<CounterRef>();
      ref->is_rx = rx;
      if (rx) {
        ref->counter = std::make_unique<stats::PktRxCounter>(name, fmt, stats::wall_clock(),
                                                             &std::cout);
      } else {
        ref->counter = std::make_unique<stats::ManualTxCounter>(name, fmt, stats::wall_clock(),
                                                                &std::cout);
      }
      return std::vector<Value>{wrap(counter_methods(), std::move(ref))};
    };
  };
  stats_module->set(Table::Key{"newManualTxCounter"},
                    make_native("stats.newManualTxCounter", new_counter(false)));
  stats_module->set(Table::Key{"newPktRxCounter"},
                    make_native("stats.newPktRxCounter", new_counter(true)));
  interp.set_global("stats", Value(stats_module));

  // dpdk module.
  auto dpdk_module = std::make_shared<Table>();
  dpdk_module->set(Table::Key{"running"},
                   make_native("dpdk.running", [](Interpreter&, std::vector<Value>&) {
                     return std::vector<Value>{Value(core::running())};
                   }));
  interp.set_global("dpdk", Value(dpdk_module));

  // mg module: task control.
  auto mg_module = std::make_shared<Table>();
  mg_module->set(
      Table::Key{"launchLua"},
      make_native("mg.launchLua", [shared](Interpreter&, std::vector<Value>& args) {
        const std::string fn_name = arg_string(args, 0, "mg.launchLua");
        std::vector<Value> slave_args(args.begin() + 1, args.end());
        std::scoped_lock lock(shared->mutex);
        const int core = shared->next_core.fetch_add(1);
        shared->launched.fetch_add(1);
        shared->slaves.emplace_back([shared, fn_name, slave_args = std::move(slave_args),
                                     core]() mutable {
          pin_thread(core);
          // A fresh, completely independent interpreter per slave task
          // (paper Section 3.4); only the chunk is shared.
          Interpreter slave(shared->program);
          install_modules(slave, shared);
          slave.run();  // define the chunk's functions
          try {
            slave.call_global(fn_name, std::move(slave_args));
          } catch (const ScriptError& e) {
            std::cerr << "slave '" << fn_name << "' failed: " << e.what() << "\n";
          }
        });
        return no_values();
      }));
  mg_module->set(Table::Key{"waitForSlaves"},
                 make_native("mg.waitForSlaves", [shared](Interpreter&, std::vector<Value>&) {
                   std::vector<std::thread> taken;
                   {
                     std::scoped_lock lock(shared->mutex);
                     taken.swap(shared->slaves);
                   }
                   for (auto& t : taken) {
                     if (t.joinable()) t.join();
                   }
                   return no_values();
                 }));
  mg_module->set(Table::Key{"sleepMillis"},
                 make_native("mg.sleepMillis", [](Interpreter&, std::vector<Value>& args) {
                   std::this_thread::sleep_for(std::chrono::milliseconds(
                       static_cast<long>(arg_number(args, 0, "mg.sleepMillis"))));
                   return no_values();
                 }));
  mg_module->set(Table::Key{"stop"}, make_native("mg.stop", [](Interpreter&, std::vector<Value>&) {
                   core::request_stop();
                   return no_values();
                 }));
  mg_module->set(Table::Key{"stopAfter"},
                 make_native("mg.stopAfter", [](Interpreter&, std::vector<Value>& args) {
                   core::stop_after(arg_number(args, 0, "mg.stopAfter"));
                   return no_values();
                 }));
  interp.set_global("mg", Value(mg_module));

  // Free functions of the MoonGen API.
  interp.set_global("parseIPAddress",
                    make_native("parseIPAddress", [](Interpreter&, std::vector<Value>& args) {
                      const std::string text = arg_string(args, 0, "parseIPAddress");
                      auto ip = proto::IPv4Address::parse(text);
                      if (!ip) throw ScriptError("parseIPAddress: bad address '" + text + "'");
                      return std::vector<Value>{Value(static_cast<double>(ip->value))};
                    }));
}

}  // namespace

void install_moongen_bindings(Interpreter& interp,
                              const std::shared_ptr<void>& shared_opaque) {
  auto shared = std::static_pointer_cast<ScriptRuntime::Shared>(shared_opaque);
  install_modules(interp, shared);
}

ScriptRuntime::ScriptRuntime(std::string_view source)
    : program_(parse(source)), shared_(std::make_shared<Shared>()) {
  shared_->program = program_;
  master_ = std::make_unique<Interpreter>(program_);
  install_modules(*master_, shared_);
}

ScriptRuntime::~ScriptRuntime() { wait(); }

void ScriptRuntime::run_master(std::vector<Value> args) {
  master_->run();
  const Value master_fn = master_->get_global("master");
  if (!master_fn.is_callable()) throw ScriptError("script defines no master() function");
  master_->call(master_fn, std::move(args));
}

void ScriptRuntime::wait() {
  std::vector<std::thread> taken;
  {
    std::scoped_lock lock(shared_->mutex);
    taken.swap(shared_->slaves);
  }
  for (auto& t : taken) {
    if (t.joinable()) t.join();
  }
}

std::size_t ScriptRuntime::slaves_launched() const { return shared_->launched.load(); }

}  // namespace moongen::script
