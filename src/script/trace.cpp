#include "script/trace.hpp"

#include <sstream>

namespace moongen::script {

namespace {

void append_observations(std::ostringstream& os, const RecordedInstr& ri) {
  if (ri.numeric) os << "  [num]";
  if (ri.mt != nullptr) {
    os << "  [" << ri.mt->type_name;
    switch (ri.tag.kind) {
      case TraceTag::Kind::kDeref:
        os << " deref";
        if (ri.tag.carries_field) {
          os << " @" << ri.tag.offset << "/" << static_cast<int>(ri.tag.width);
        }
        break;
      case TraceTag::Kind::kWrite:
        os << " write ";
        if (ri.tag.relative) {
          os << "@carried";
        } else {
          os << "@" << ri.tag.offset << "/" << static_cast<int>(ri.tag.width);
        }
        break;
      case TraceTag::Kind::kNone:
        os << " opaque";
        break;
    }
    os << "]";
  }
  if (ri.callee != nullptr) os << "  [native " << ri.callee->name << "]";
}

}  // namespace

std::string disassemble_trace(const RecordedTrace& trace) {
  std::ostringstream os;
  if (trace.proto == nullptr) return "trace <empty>\n";
  os << "trace <" << trace.proto->name << "> anchor=" << trace.anchor_pc << " "
     << disassemble_instr(*trace.proto, trace.anchor) << "\n";
  for (const RecordedInstr& ri : trace.body) {
    os << "  " << ri.pc << "\t" << disassemble_instr(*trace.proto, ri.ins);
    append_observations(os, ri);
    os << "\n";
  }
  return os.str();
}

}  // namespace moongen::script
