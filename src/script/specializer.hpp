// Trace specializer: compiles recorded hot-loop traces (trace.hpp) into
// guarded fast paths for the script VM.
//
// Two specialization shapes, matching how the paper's LuaJIT backend earns
// its ~100 cycles/pkt (Sections 3.2, 5.1):
//
//  * FieldKernel — the script→field-modifier escape hatch. A generic-for
//    over a packet array whose body is straight-line header-field writes
//    (constants, counters, math.random draws) compiles onto
//    core::ModifierProgram: hot packets never enter the VM dispatch loop
//    at all. The kernel draws from the interpreter's own math.random
//    engine, so the random stream is byte-identical to generic execution.
//
//  * NumLoop — a superinstruction for numeric for-loops with pure-numeric
//    straight-line bodies: the recorded opcode sequence re-played over
//    unboxed double slots (frame registers and global slots mapped in at
//    entry, written back at exit), replacing per-instruction dispatch and
//    Value boxing with a tight machine loop. Operations replay in recorded
//    order with the VM's exact double semantics, so results are
//    bit-identical.
//
// Both run as prefix accelerators at their loop anchor: entry guards
// verify every recorded assumption (operand types, method-table identity,
// iterator protocol, call-site inline caches, random-native identity); any
// mismatch — a deopt — simply skips the accelerator and the generic VM
// executes the iteration. Statement budgets are enforced exactly: kernels
// process at most the iterations the remaining budget allows and leave
// the exhaustion throw to the generic loop header.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/field_modifier.hpp"
#include "script/trace.hpp"
#include "script/value.hpp"
#include "script/vm.hpp"

namespace moongen::script {

class Interpreter;

/// One term of an entry-invariant expression: a frame register, a global
/// environment slot (stable std::map node) or an upvalue of the executing
/// closure (resolved by index at entry — specializations are shared by all
/// closures of a proto, so cell pointers must not be baked in).
struct EntryTerm {
  enum class Src : std::uint8_t { kReg, kGlobal, kUpval };
  Src src = Src::kReg;
  std::int8_t coef = 1;  ///< ±1
  std::uint16_t index = 0;
  Value* slot = nullptr;  ///< kGlobal only
};

/// An entry-invariant numeric expression: constant + signed sum of terms
/// (k + Σ coef·term). Evaluated once per kernel entry. Restricted to
/// exact-integer arithmetic — the builder only emits one when every
/// constant is integral, and entry guards require integral term values
/// with |v| <= 2^32 — so re-association cannot change rounding versus the
/// generic per-iteration evaluation order.
struct EntryExpr {
  double k = 0.0;
  std::vector<EntryTerm> terms;
};

/// One field write per packet, with its value recipe.
struct ActionRecipe {
  core::FieldAction::Kind kind = core::FieldAction::Kind::kConstant;
  core::FieldRef field;
  /// kConstant: the written value. kRandom: the base added to the draw
  /// (the +1 of math.random's 1..m convention is folded in at entry).
  /// kCounter: the base added to the 1-based loop index.
  EntryExpr base;
  /// kRandom only: the draw modulus m.
  EntryExpr modulus;
};

/// Compiled script→field-modifier escape hatch for a kForInCall anchor.
struct FieldKernelSpec {
  /// The recorded packet-array method table (entry guard: same table).
  const MethodTable* array_mt = nullptr;
  std::vector<ActionRecipe> actions;
  /// All distinct terms feeding EntryExprs: each must resolve to an
  /// integral number with |v| <= 2^32 at entry (exactness precondition
  /// above).
  std::vector<EntryTerm> guard_terms;
  /// kCallGlobalField sites folded into draws: each site's IC must still
  /// hit AND resolve to `random_native` at entry.
  std::vector<std::uint16_t> random_ics;
  const NativeFunction* random_native = nullptr;
  /// Statement-budget ticks per packet: the anchor's own tick plus the
  /// body's kCheckStep count.
  std::uint32_t ticks_per_packet = 1;
};

/// One superinstruction micro-op over unboxed double slots.
struct NumOp {
  enum class Kind : std::uint8_t {
    kLoadConst,  // s[dst] = imm
    kMove,       // s[dst] = s[a]
    kAdd,        // s[dst] = s[a] + s[b]   (exact VM double semantics)
    kSub,
    kMul,
    kDiv,
    kMod,        // a - floor(a/b)*b, like the VM
    kPow,
    kNeg,
    kGlobalGet,  // s[dst] = globals[gslot]
    kGlobalSet,  // globals[gslot] = s[a]
  };
  Kind kind = Kind::kLoadConst;
  std::uint8_t dst = 0, a = 0, b = 0;
  std::uint16_t gslot = 0;
  double imm = 0.0;
};

/// Compiled numeric-for superinstruction for a kForTest anchor.
struct NumLoopSpec {
  std::vector<NumOp> ops;  ///< one loop iteration (test/increment implicit)
  /// slot i <-> frame register reg_slots[i]; the loop's i/stop/step triple
  /// occupies slots idx/stop/step below.
  std::vector<std::uint16_t> reg_slots;
  /// Slots read before written in an iteration (must be numeric at entry;
  /// the others are fully defined by the iteration before use).
  std::vector<bool> reg_live_in;
  /// Global slots referenced by kGlobalGet/kGlobalSet (stable map nodes).
  std::vector<Value*> global_slots;
  std::vector<bool> global_live_in;
  std::vector<bool> global_written;
  std::uint8_t idx_slot = 0, stop_slot = 0, step_slot = 0;
  std::uint32_t ticks_per_iter = 1;
};

struct Specialization {
  enum class Kind : std::uint8_t { kFieldKernel, kNumLoop };
  Kind kind = Kind::kFieldKernel;
  FieldKernelSpec field;
  NumLoopSpec num;
  /// The source trace, kept for introspection (disassemble_trace).
  RecordedTrace trace;
};

/// Compiles a recorded trace into a specialization, or nullptr when the
/// trace is not specializable (the anchor is then marked failed and the
/// generic VM keeps running it).
std::shared_ptr<const Specialization> build_specialization(RecordedTrace trace,
                                                           Interpreter& host);

/// Executes a field kernel at its kForInCall anchor. Processes whatever
/// prefix of the remaining elements the guards and budget allow (possibly
/// none), updating packet bytes, the control register and the statement
/// budget; the caller always falls through to the generic anchor code.
/// `regs` is the frame's register window, `ics` its inline-cache array,
/// `upvals` the executing closure's upvalue cells (may be empty).
void run_field_kernel(const Specialization& spec, const Instr& anchor, Value* regs,
                      ICEntry* ics, const std::vector<std::shared_ptr<Cell>>& upvals,
                      Interpreter& host);

/// Executes a numeric-loop superinstruction at its kForTest anchor: runs
/// whatever number of iterations guards and budget allow, writes slots and
/// globals back, and returns; the caller falls through to the generic
/// test.
void run_num_loop(const Specialization& spec, const Instr& anchor, Value* regs,
                  Interpreter& host);

}  // namespace moongen::script
