#include "script/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <map>

#include "script/value.hpp"

namespace moongen::script {

namespace {

const std::map<std::string, TokenType, std::less<>>& keywords() {
  static const std::map<std::string, TokenType, std::less<>> kw = {
      {"and", TokenType::kAnd},       {"break", TokenType::kBreak},
      {"do", TokenType::kDo},         {"else", TokenType::kElse},
      {"elseif", TokenType::kElseif}, {"end", TokenType::kEnd},
      {"false", TokenType::kFalse},   {"for", TokenType::kFor},
      {"function", TokenType::kFunction},
      {"if", TokenType::kIf},         {"in", TokenType::kIn},
      {"local", TokenType::kLocal},   {"nil", TokenType::kNil},
      {"not", TokenType::kNot},       {"or", TokenType::kOr},
      {"repeat", TokenType::kRepeat}, {"return", TokenType::kReturn},
      {"then", TokenType::kThen},     {"true", TokenType::kTrue},
      {"until", TokenType::kUntil},   {"while", TokenType::kWhile},
  };
  return kw;
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_whitespace_and_comments();
      if (at_end()) break;
      tokens.push_back(next_token());
    }
    tokens.push_back(Token{TokenType::kEof, "", 0, line_});
    return tokens;
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() { return src_[pos_++]; }
  bool match(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_whitespace_and_comments() {
    while (!at_end()) {
      const char c = peek();
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && peek(1) == '-') {
        pos_ += 2;
        if (peek() == '[' && peek(1) == '[') {  // long comment --[[ ... ]]
          pos_ += 2;
          while (!at_end() && !(peek() == ']' && peek(1) == ']')) {
            if (peek() == '\n') ++line_;
            ++pos_;
          }
          if (!at_end()) pos_ += 2;
        } else {
          while (!at_end() && peek() != '\n') ++pos_;
        }
      } else {
        return;
      }
    }
  }

  Token make(TokenType type, std::string text = "") {
    return Token{type, std::move(text), 0, line_};
  }

  Token next_token() {
    const char c = peek();
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      return number();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return name();
    if (c == '"' || c == '\'') return string_literal();

    advance();
    switch (c) {
      case '+': return make(TokenType::kPlus);
      case '-': return make(TokenType::kMinus);
      case '*': return make(TokenType::kStar);
      case '/': return make(TokenType::kSlash);
      case '%': return make(TokenType::kPercent);
      case '^': return make(TokenType::kCaret);
      case '#': return make(TokenType::kHash);
      case '(': return make(TokenType::kLParen);
      case ')': return make(TokenType::kRParen);
      case '{': return make(TokenType::kLBrace);
      case '}': return make(TokenType::kRBrace);
      case '[': return make(TokenType::kLBracket);
      case ']': return make(TokenType::kRBracket);
      case ';': return make(TokenType::kSemicolon);
      case ':': return make(TokenType::kColon);
      case ',': return make(TokenType::kComma);
      case '=': return make(match('=') ? TokenType::kEq : TokenType::kAssign);
      case '<': return make(match('=') ? TokenType::kLe : TokenType::kLt);
      case '>': return make(match('=') ? TokenType::kGe : TokenType::kGt);
      case '~':
        if (match('=')) return make(TokenType::kNe);
        throw ScriptError("unexpected '~'", line_);
      case '.':
        if (match('.')) {
          if (match('.')) return make(TokenType::kEllipsis);
          return make(TokenType::kConcat);
        }
        return make(TokenType::kDot);
      default:
        throw ScriptError(std::string("unexpected character '") + c + "'", line_);
    }
  }

  Token number() {
    const std::size_t start = pos_;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      pos_ += 2;
      while (std::isxdigit(static_cast<unsigned char>(peek()))) ++pos_;
    } else {
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
      if (peek() == '.') {
        ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
      }
      if (peek() == 'e' || peek() == 'E') {
        ++pos_;
        if (peek() == '+' || peek() == '-') ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
      }
    }
    Token tok = make(TokenType::kNumber);
    const std::string text(src_.substr(start, pos_ - start));
    tok.number = std::strtod(text.c_str(), nullptr);
    return tok;
  }

  Token name() {
    const std::size_t start = pos_;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') ++pos_;
    const std::string text(src_.substr(start, pos_ - start));
    const auto it = keywords().find(text);
    if (it != keywords().end()) return make(it->second, text);
    return make(TokenType::kName, text);
  }

  Token string_literal() {
    const char quote = advance();
    std::string out;
    while (!at_end() && peek() != quote) {
      char c = advance();
      if (c == '\n') throw ScriptError("unterminated string", line_);
      if (c == '\\') {
        if (at_end()) break;
        const char esc = advance();
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          case '\'': c = '\''; break;
          case '0': c = '\0'; break;
          default: throw ScriptError(std::string("unknown escape '\\") + esc + "'", line_);
        }
      }
      out.push_back(c);
    }
    if (at_end()) throw ScriptError("unterminated string", line_);
    advance();  // closing quote
    return make(TokenType::kString, std::move(out));
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) { return Lexer(source).run(); }

std::string token_type_name(TokenType type) {
  switch (type) {
    case TokenType::kNumber: return "number";
    case TokenType::kString: return "string";
    case TokenType::kName: return "name";
    case TokenType::kEof: return "<eof>";
    case TokenType::kEnd: return "'end'";
    case TokenType::kThen: return "'then'";
    case TokenType::kDo: return "'do'";
    case TokenType::kAssign: return "'='";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    default: return "token";
  }
}

}  // namespace moongen::script
