// Register VM executing the bytecode produced by compiler.hpp.
//
// This is the "compiled" scripting tier that closes (part of) the gap to
// the paper's LuaJIT backend: no per-node dispatch, no per-scope
// environment maps, no shared_ptr churn for locals. Closures produced by
// the VM are ordinary NativeFunction values whose `compiled` member holds
// the VmClosure, so they flow through bindings, tables and the
// tree-walking interpreter unchanged — `type()`, `tostring()` and equality
// behave exactly as for interpreter functions.
//
// On top of the generic dispatch loop sits the trace-specialization tier
// (trace.hpp / specializer.hpp): loop anchors count back edges in their IC
// slots, hot loops are recorded for one iteration, and the recorded trace
// is compiled into either a numeric superinstruction loop or a
// field-modifier kernel. Specialized code runs as a *prefix accelerator*:
// it processes as many iterations as its entry guards and the statement
// budget allow, then always falls through to the generic anchor code,
// which remains the single place that handles loop exit, result binding
// and budget exhaustion. Guard misses simply skip the accelerator, so
// semantics stay byte-identical to the generic VM (and the tree-walker).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "script/compiler.hpp"
#include "script/trace.hpp"
#include "script/value.hpp"

namespace moongen::script {

class Interpreter;
struct Specialization;

/// Heap box for a captured local ("upvalue" storage). A fresh Cell per
/// declaration-execution reproduces the interpreter's fresh-environment-
/// per-iteration closure semantics.
struct Cell {
  Value v;
};

/// A closure over compiled code: proto index plus the captured cells.
/// Wrapped in a NativeFunction (never a distinct Value alternative).
struct VmClosure {
  std::shared_ptr<const Chunk> chunk;
  std::uint32_t proto_index = 0;
  std::vector<std::shared_ptr<Cell>> upvals;
};

/// Monomorphic inline cache. Global slots point into the interpreter's
/// global environment (std::map nodes: stable, never erased). Method
/// pointers point into static MethodTable singletons. Table field slots
/// are guarded by the table's version token: erasure draws a fresh
/// process-unique token, so a hit proves the slot pointer is still the
/// live map node (even if the table's address was reused).
///
/// Loop-anchor instructions (kForTest / kForInCall) reuse their IC slot
/// for trace-specialization state: the back-edge hotness counter and the
/// installed Specialization (or the permanent-failure flag when a recorded
/// trace proved unspecializable).
struct ICEntry {
  enum class FieldKind : std::uint8_t { kNone, kMethod, kHook };
  Value* global_slot = nullptr;
  const MethodTable* mt = nullptr;
  const Method* method = nullptr;
  const Method1* method1 = nullptr;
  const Table* tbl = nullptr;
  const Value* tslot = nullptr;
  std::uint64_t tversion = 0;
  FieldKind kind = FieldKind::kNone;
  /// Anchor-only: back edges observed while cold.
  std::uint32_t hot = 0;
  /// Anchor-only: a recorded trace failed to specialize; never retry.
  bool spec_failed = false;
  /// Anchor-only: the installed specialized handler (null while cold).
  std::shared_ptr<const Specialization> spec;
};

/// One VM per interpreter. Holds the register stack and the inline caches;
/// chunks themselves stay immutable and shareable across threads.
class Vm {
 public:
  explicit Vm(Interpreter& host) : host_(host) {}

  /// Runs a chunk's top-level function (the interpreter's run()).
  void run_toplevel(const std::shared_ptr<const Chunk>& chunk);

  /// Calls a compiled closure with interpreter calling convention: extra
  /// arguments are ignored, missing ones are nil.
  std::vector<Value> call_closure(const std::shared_ptr<VmClosure>& closure,
                                  std::vector<Value>& args);

  /// Specializations installed by this VM, in installation order
  /// (introspection: trace listings, tests).
  [[nodiscard]] const std::vector<std::shared_ptr<const Specialization>>& specializations()
      const {
    return specializations_;
  }

 private:
  struct Frame {
    std::shared_ptr<const Chunk> chunk;  // keeps protos alive for kClosure
    const FunctionProto* proto = nullptr;
    const std::vector<std::shared_ptr<Cell>>* upvals = nullptr;
    std::vector<std::shared_ptr<Cell>> cells;
    ICEntry* ics = nullptr;
    std::size_t base = 0;
  };

  std::vector<Value> execute(Frame& frame);
  std::vector<Value> do_call(const Value& callee, std::vector<Value>& args, int line);
  ICEntry* ic_table(const Chunk* chunk);
  void ensure_stack(std::size_t n);

  /// Trace machinery (definitions in vm.cpp). record_step runs on every
  /// fetched instruction while recording; the anchor helpers arm the
  /// recorder and install the built specialization.
  void arm_recording(Frame& frame, std::uint32_t anchor_pc, const Instr& anchor,
                     std::uint32_t exit_pc, ICEntry& entry);
  void record_step(Frame& frame, std::uint32_t pc, const Instr& ins);
  void finish_recording();
  /// Soft aborts reset the anchor to cold (retryable: the loop exited
  /// mid-recording, e.g. an empty array). Hard aborts mark it failed.
  void abort_recording(bool hard);

  /// Depth-indexed scratch vectors for call arguments: one live vector per
  /// nesting level, recycled across calls so the hot path never mallocs an
  /// argument list. RAII holder in vm.cpp releases on scope exit.
  std::vector<Value>& acquire_scratch();
  friend struct ArgScratch;

  Interpreter& host_;
  /// Shared register stack: frames are [base, base + num_regs) windows.
  /// Always index via base — nested calls may reallocate the vector.
  std::vector<Value> stack_;
  std::size_t top_ = 0;
  /// Per-chunk IC arrays (unordered_map nodes are pointer-stable).
  std::unordered_map<const Chunk*, std::vector<ICEntry>> ics_;
  /// deque: references stay valid while deeper levels are acquired.
  std::deque<std::vector<Value>> scratch_;
  std::size_t scratch_depth_ = 0;
  /// Shared empty vector for zero-arg method1 call sites (that fast path
  /// skips ArgScratch); method1 implementations must not mutate their args.
  std::vector<Value> no_args_;
  /// Hot-loop trace recording (active for at most one loop at a time).
  TraceRecorder recorder_;
  bool recording_ = false;
  std::vector<std::shared_ptr<const Specialization>> specializations_;
};

}  // namespace moongen::script
